(* The fault matrix: each test drives the resilient serving path through
   one {!Faultinject} site and asserts the supervisor / degradation
   ladder absorbs whatever the active plan injects there — a typed
   answer or typed error, never a raw [Injected_fault] escaping.

   The plan comes from STGQ_FAULTS (parsed once by [Faultinject] at
   start-up).  With no plan armed — the plain `dune runtest` run — every
   test passes trivially; the root [@faults] alias re-runs this suite
   once per plan in docs/ROBUSTNESS.md's matrix. *)

open Stgq_core

let check = Alcotest.check

let specs =
  match Sys.getenv_opt "STGQ_FAULTS" with
  | None | Some "" -> []
  | Some raw -> (
      match Faultinject.parse raw with
      | Ok specs -> specs
      | Error msg -> failwith ("unparsable STGQ_FAULTS plan: " ^ msg))

let spec_for site =
  List.find_opt (fun (s : Faultinject.spec) -> s.site = site) specs

(* one-shot transient faults must be survivable; persistent or hard
   faults must surface as a typed [Unavailable] *)
let expect_result ~name ~(spec : Faultinject.spec) ~fired result =
  if not fired then ()
  else if spec.transient && not spec.persistent then
    match result with
    | Ok (a : _ Resilience.answer) ->
        check Alcotest.bool (name ^ ": retried") true (a.retries >= 1)
    | Error e ->
        Alcotest.failf "%s: one transient fault must be absorbed, got %a" name
          Resilience.pp_error e
  else
    match result with
    | Ok _ -> Alcotest.failf "%s: persistent fault must not yield an answer" name
    | Error (Resilience.Unavailable _) -> ()
    | Error (Resilience.Degraded _ as e) ->
        Alcotest.failf "%s: hard faults are Unavailable, got %a" name
          Resilience.pp_error e

let fast = { Resilience.default_policy with backoff_ms = 0.01 }

(* --- fixtures ------------------------------------------------------ *)

(* small and fully-connected: every query below has a solution *)
let small_ti =
  let n = 6 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v, 1. +. float_of_int ((u + v) mod 3)) :: !edges
    done
  done;
  let horizon = 10 in
  let schedules =
    Array.init n (fun _ ->
        let a = Timetable.Availability.create ~horizon in
        Timetable.Availability.set_free a 0 (horizon - 1);
        a)
  in
  {
    Query.social =
      { Query.graph = Socgraph.Graph.of_edges n !edges; initiator = 0 };
    schedules;
  }

let small_q = { Query.p = 3; s = 2; k = 2; m = 2 }

(* dense enough that the kernel crosses several 256-node checkpoints *)
let big_ti, big_q =
  let n = 22 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v, float_of_int (1 + ((u + (3 * v)) mod 19))) :: !edges
    done
  done;
  let horizon = 40 in
  let schedules =
    Array.init n (fun v ->
        let a = Timetable.Availability.create ~horizon in
        Timetable.Availability.set_free a (v mod 3) (horizon - 1 - (v mod 2));
        a)
  in
  ( {
      Query.social =
        { Query.graph = Socgraph.Graph.of_edges n !edges; initiator = 0 };
      schedules;
    },
    { Query.p = 10; s = 2; k = 5; m = 3 } )

(* --- sites ---------------------------------------------------------- *)

let test_pool_job_start () =
  match spec_for Faultinject.Pool_job_start with
  | None -> ()
  | Some _ ->
      Obs.set_enabled true;
      Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
      let respawns = Obs.counter "engine.pool.respawns" in
      let before = Obs.Counter.value respawns in
      let results =
        Engine.Pool.with_pool ~size:2 @@ fun pool ->
        Engine.Pool.await_all
          (List.map (Engine.Pool.submit pool) (List.init 12 (fun i () -> i + 1)))
      in
      check
        (Alcotest.list Alcotest.int)
        "batch completes despite injected worker death"
        (List.init 12 (fun i -> i + 1))
        results;
      check Alcotest.bool "respawn counted" true
        (Obs.Counter.value respawns > before)

let test_context_build () =
  match spec_for Faultinject.Context_build with
  | None -> ()
  | Some spec ->
      let t = Service.create small_ti in
      let result =
        Service.sgq_r ~policy:fast t ~initiator:0
          { Query.p = small_q.p; s = small_q.s; k = small_q.k }
      in
      let fired = Faultinject.hits Faultinject.Context_build > 0 in
      check Alcotest.bool "context-build site reached" true fired;
      expect_result ~name:"context_build" ~spec ~fired result;
      (* a transient plan must leave the service fully serviceable *)
      if spec.transient && not spec.persistent then
        match result with
        | Ok { value = Some s; _ } ->
            check Alcotest.bool "served answer is feasible" true
              (Validate.is_valid_sg small_ti.Query.social
                 { Query.p = small_q.p; s = small_q.s; k = small_q.k }
                 s)
        | _ -> Alcotest.fail "context_build: expected a served answer"

let test_kernel_expansion () =
  match spec_for Faultinject.Kernel_expansion with
  | None -> ()
  | Some spec ->
      let result =
        Resilience.run ~policy:fast
          ~exact:(fun b -> (Stgselect.solve_report ~budget:b big_ti big_q).outcome)
          ~heuristic:(fun b -> Heuristics.beam_stgq ~budget:b big_ti big_q)
          ()
      in
      let fired = Faultinject.hits Faultinject.Kernel_expansion > 0 in
      check Alcotest.bool "kernel checkpoint reached" true fired;
      expect_result ~name:"kernel_expansion" ~spec ~fired result

let small_q_sg = { Query.p = small_q.p; s = small_q.s; k = small_q.k }

let test_certify () =
  match spec_for Faultinject.Certify with
  | None -> ()
  | Some spec ->
      let result =
        Resilience.run ~policy:fast
          ~exact:(fun b ->
            let report = Sgselect.solve_report ~budget:b small_ti.Query.social small_q_sg in
            Resilience.certify_outcome
              ~certify:(Validate.certify_sg small_ti.Query.social small_q_sg)
              report.outcome)
          ~heuristic:(fun b ->
            Validate.certify_sg small_ti.Query.social small_q_sg
              (Heuristics.beam_sgq ~budget:b small_ti.Query.social small_q_sg))
          ()
      in
      let fired = Faultinject.hits Faultinject.Certify > 0 in
      check Alcotest.bool "certification reached" true fired;
      expect_result ~name:"certify" ~spec ~fired result

(* --- the wire path --------------------------------------------------- *)

(* Faults injected beneath [Service] must survive the wire as typed
   [Failed] responses — never a dropped connection or a decode error.
   [with_plan] supersedes whatever STGQ_FAULTS plan is armed, so both
   ladders are exercised deterministically on every run of the matrix,
   including the plain `dune runtest` one. *)
let test_wire_survival () =
  let service = Service.create small_ti in
  let config = { Server.default_config with policy = Some fast } in
  Suite_server.with_server ~config service @@ fun addr ->
  Suite_server.with_client addr @@ fun c ->
  let sgq initiator =
    Suite_server.request_exn c
      (Proto.Sgq { initiator; q = small_q_sg; policy = None })
  in
  (* one transient context-build fault: the retry ladder absorbs it and
     the served wire answer records the retry *)
  (Faultinject.with_plan "context_build@1:transient" @@ fun () ->
   match sgq 0 with
   | Proto.Sg_answer { value = Some _; retries; _ } ->
       check Alcotest.bool "wire answer records the retry" true (retries >= 1)
   | resp ->
       Alcotest.failf "wire: one transient fault must be absorbed, got %a"
         Proto.pp_response resp);
  (* a persistent fault on an uncached context key: the ladder exhausts
     its retries and the wire carries a typed [Unavailable] *)
  (Faultinject.with_plan "context_build@1+" @@ fun () ->
   match sgq 1 with
   | Proto.Failed (Proto.Unavailable _) -> ()
   | resp ->
       Alcotest.failf "wire: persistent fault must be Unavailable, got %a"
         Proto.pp_response resp);
  (* a failed request is an answer, not a hangup *)
  match Suite_server.request_exn c (Proto.Ping "alive") with
  | Proto.Pong "alive" -> ()
  | resp ->
      Alcotest.failf "connection must survive injected faults, got %a"
        Proto.pp_response resp

(* Replay the armed STGQ_FAULTS plan itself through the server: a
   persistent plan must surface over the wire exactly as it does
   directly.  A one-shot plan was consumed by the direct tests above
   (hit counters are process-wide) — the wire path then serves normally,
   which is asserted too.  Either way the fault never escapes as a raw
   exception or a dropped connection. *)
let test_wire_env_plan () =
  match spec_for Faultinject.Context_build with
  | None -> ()
  | Some spec -> (
      let service = Service.create small_ti in
      let config = { Server.default_config with policy = Some fast } in
      Suite_server.with_server ~config service @@ fun addr ->
      Suite_server.with_client addr @@ fun c ->
      let resp =
        Suite_server.request_exn c
          (Proto.Sgq { initiator = 0; q = small_q_sg; policy = None })
      in
      if spec.persistent then
        match resp with
        | Proto.Failed (Proto.Unavailable _) -> ()
        | resp ->
            Alcotest.failf
              "env plan must cross the wire as Unavailable, got %a"
              Proto.pp_response resp
      else
        (* spent or absorbed one-shot: the wire serves an answer *)
        match resp with
        | Proto.Sg_answer { value = Some _; _ } -> ()
        | resp ->
            Alcotest.failf "wire must serve despite a one-shot fault, got %a"
              Proto.pp_response resp)

let suite =
  [
    Alcotest.test_case "pool job start" `Quick test_pool_job_start;
    Alcotest.test_case "context build" `Quick test_context_build;
    Alcotest.test_case "kernel expansion" `Quick test_kernel_expansion;
    Alcotest.test_case "certify" `Quick test_certify;
    Alcotest.test_case "wire survival" `Quick test_wire_survival;
    Alcotest.test_case "wire env plan" `Quick test_wire_env_plan;
  ]

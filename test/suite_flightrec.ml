(* The flight-recorder plane: trace retention policy and eviction
   (Obs.Flightrec), the structured JSONL event log and its rotation
   discipline (Obs.Events), the runtime telemetry sampler
   (Obs.Runtime), the exposition routes that serve all three, and the
   docs route table staying in lock-step with the generated one. *)

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* Every test leaves the whole plane off and empty, whatever happens. *)
let with_plane f =
  Obs.set_enabled true;
  Obs.Trace.set_enabled true;
  Obs.Flightrec.set_enabled true;
  Obs.Events.set_enabled true;
  Obs.reset ();
  Obs.Trace.reset ();
  Obs.Flightrec.reset ();
  Obs.Events.reset ();
  Obs.Runtime.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Runtime.stop ();
      Obs.Events.stop ();
      Obs.Flightrec.set_enabled false;
      Obs.Flightrec.reset ();
      Obs.Flightrec.configure ~capacity:256 ~sample_every:16 ();
      Obs.Trace.set_enabled false;
      Obs.Trace.reset ();
      Obs.set_enabled false)
    f

(* Run one fake query: a closed root span plus [observe] with the given
   outcome; returns the trace id. *)
let fake_query ?(name = "service.stgq") ?(latency_ns = 1e6) ?(degraded = false)
    ?(unavailable = false) ?(retries = 0) ?trip () =
  let tid = ref 0 in
  Obs.Trace.with_span name (fun () ->
      (match Obs.Trace.current () with
      | Some ctx -> tid := ctx.Obs.Trace.trace_id
      | None -> Alcotest.fail "tracing off: no current ctx");
      Obs.Trace.with_span "solver.inner" (fun () -> ()));
  Obs.Flightrec.observe ~trace_id:!tid ~kind:"stgq" ~latency_ns ~degraded
    ~unavailable ~retries ?trip ();
  !tid

(* ------------------------------------------------------------------ *)
(* Retention policy.                                                   *)

let test_retention_pins_bad_outcomes () =
  with_plane @@ fun () ->
  let degraded_id = fake_query ~degraded:true () in
  let unavailable_id = fake_query ~unavailable:true () in
  let tripped_id = fake_query ~trip:"deadline" () in
  let retried_id = fake_query ~retries:2 () in
  let reason_of id =
    match
      List.find_opt
        (fun (s : Obs.Flightrec.summary) -> s.s_trace_id = id)
        (Obs.Flightrec.entries ())
    with
    | Some s ->
        check Alcotest.bool
          (Printf.sprintf "trace %d pinned" id)
          true s.s_pinned;
        s.s_reason
    | None -> Alcotest.failf "trace %d not retained" id
  in
  check Alcotest.string "degraded reason" "degraded" (reason_of degraded_id);
  check Alcotest.string "unavailable reason" "unavailable"
    (reason_of unavailable_id);
  check Alcotest.string "budget-trip reason" "budget-trip"
    (reason_of tripped_id);
  check Alcotest.string "retried reason" "retried" (reason_of retried_id);
  check Alcotest.int "all four counted retained" 4 (Obs.Flightrec.retained ());
  (* the stitched forest is fetchable and complete (root + inner span) *)
  (match Obs.Flightrec.find degraded_id with
  | None -> Alcotest.fail "degraded trace not fetchable"
  | Some roots ->
      check Alcotest.int "one root" 1 (List.length roots);
      let root = List.hd roots in
      check Alcotest.string "rooted at the query span" "service.stgq"
        root.Obs.Trace.t_span.Obs.Trace.sp_name;
      check Alcotest.int "inner span stitched" 1
        (List.length root.Obs.Trace.t_children));
  match Obs.Flightrec.trace_json degraded_id with
  | None -> Alcotest.fail "no trace json"
  | Some json ->
      check Alcotest.bool "json names the trace id" true
        (contains json (string_of_int degraded_id));
      check Alcotest.bool "json names the span" true
        (contains json "service.stgq")

let test_normal_queries_reservoir_sampled () =
  with_plane @@ fun () ->
  Obs.Flightrec.configure ~sample_every:3 ();
  let ids = List.init 6 (fun _ -> fake_query ()) in
  check Alcotest.int "every 3rd normal query sampled" 2
    (Obs.Flightrec.sampled ());
  check Alcotest.int "none pinned" 0 (Obs.Flightrec.retained ());
  let retained_ids =
    List.map
      (fun (s : Obs.Flightrec.summary) -> s.s_trace_id)
      (Obs.Flightrec.entries ())
  in
  check Alcotest.int "store holds exactly the sampled ones" 2
    (List.length retained_ids);
  List.iter
    (fun id ->
      check Alcotest.bool "sampled id came from the workload" true
        (List.mem id ids))
    retained_ids;
  List.iter
    (fun id ->
      match
        List.find_opt
          (fun (s : Obs.Flightrec.summary) -> s.s_trace_id = id)
          (Obs.Flightrec.entries ())
      with
      | Some s -> check Alcotest.string "reason" "sampled" s.s_reason
      | None -> ())
    retained_ids

let test_slow_queries_pinned_after_threshold () =
  with_plane @@ fun () ->
  (* no latency samples yet: the slow criterion is disabled *)
  check (Alcotest.float 0.) "threshold starts at 0" 0.
    (Obs.Flightrec.latency_threshold_ns ());
  (* feed the service histogram so the rolling p99 exists *)
  let h = Obs.histogram "service.stgq.latency_ns" in
  for _ = 1 to 100 do
    Obs.Histogram.observe h 1e6
  done;
  check Alcotest.bool "threshold now positive" true
    (Obs.Flightrec.latency_threshold_ns () > 0.);
  let slow_id = fake_query ~latency_ns:1e12 () in
  match
    List.find_opt
      (fun (s : Obs.Flightrec.summary) -> s.s_trace_id = slow_id)
      (Obs.Flightrec.entries ())
  with
  | Some s ->
      check Alcotest.string "slow reason" "slow" s.s_reason;
      check Alcotest.bool "pinned" true s.s_pinned
  | None -> Alcotest.fail "slow query not retained"

(* ------------------------------------------------------------------ *)
(* Eviction.                                                           *)

let test_eviction_oldest_unpinned_first () =
  with_plane @@ fun () ->
  Obs.Flightrec.configure ~capacity:3 ~sample_every:1 ();
  let sampled_id = fake_query () in
  let pinned_a = fake_query ~degraded:true () in
  let pinned_b = fake_query ~degraded:true () in
  check Alcotest.int "store full" 3 (Obs.Flightrec.size ());
  (* one more pinned admission: the sampled entry goes first, not the
     older pinned ones *)
  let pinned_c = fake_query ~degraded:true () in
  check Alcotest.int "still at capacity" 3 (Obs.Flightrec.size ());
  check Alcotest.int "one eviction" 1 (Obs.Flightrec.evicted ());
  check Alcotest.bool "sampled entry evicted" true
    (Obs.Flightrec.find sampled_id = None);
  List.iter
    (fun id ->
      check Alcotest.bool
        (Printf.sprintf "pinned %d survives" id)
        true
        (Obs.Flightrec.find id <> None))
    [ pinned_a; pinned_b; pinned_c ];
  (* a fully-pinned store falls back to evicting its oldest entry *)
  let pinned_d = fake_query ~degraded:true () in
  check Alcotest.int "capacity still holds" 3 (Obs.Flightrec.size ());
  check Alcotest.bool "oldest pinned aged out" true
    (Obs.Flightrec.find pinned_a = None);
  check Alcotest.bool "newest pinned present" true
    (Obs.Flightrec.find pinned_d <> None)

let test_refresh_restitches () =
  with_plane @@ fun () ->
  let tid = ref 0 in
  let spans_at_observe = ref 0 in
  Obs.Trace.with_span "server.request" (fun () ->
      (match Obs.Trace.current () with
      | Some ctx -> tid := ctx.Obs.Trace.trace_id
      | None -> Alcotest.fail "no ctx");
      Obs.Trace.with_span "service.stgq" (fun () -> ());
      (* observe while the envelope span is still open, as the service
         layer does on the wire path *)
      Obs.Flightrec.observe ~trace_id:!tid ~kind:"stgq" ~latency_ns:1e6
        ~degraded:true ~unavailable:false ~retries:0 ();
      (match
         List.find_opt
           (fun (s : Obs.Flightrec.summary) -> s.s_trace_id = !tid)
           (Obs.Flightrec.entries ())
       with
      | Some s -> spans_at_observe := s.s_spans
      | None -> Alcotest.fail "not retained at observe time"));
  (* the envelope span has closed; refresh picks it up *)
  Obs.Flightrec.refresh !tid;
  match
    List.find_opt
      (fun (s : Obs.Flightrec.summary) -> s.s_trace_id = !tid)
      (Obs.Flightrec.entries ())
  with
  | Some s ->
      check Alcotest.bool "refresh grew the stitch" true
        (s.s_spans > !spans_at_observe);
      check Alcotest.int "envelope included" 2 s.s_spans
  | None -> Alcotest.fail "trace lost across refresh"

(* ------------------------------------------------------------------ *)
(* Event log: ring, record shape, rotation discipline.                 *)

let test_events_ring_and_tail () =
  with_plane @@ fun () ->
  for i = 1 to 5 do
    Obs.Events.emit ~kind:"unit.test" [ ("seq", string_of_int i) ]
  done;
  check Alcotest.int "emitted" 5 (Obs.Events.emitted ());
  let tail = Obs.Events.tail 3 in
  check Alcotest.int "tail bounded" 3 (List.length tail);
  (* oldest-first within the tail window: 3, 4, 5 *)
  List.iteri
    (fun i line ->
      check Alcotest.bool
        (Printf.sprintf "tail[%d] ordered" i)
        true
        (contains line (Printf.sprintf "\"seq\": %d" (i + 3)));
      check Alcotest.bool "jsonl line" true
        (String.length line > 0 && line.[String.length line - 1] = '\n');
      check Alcotest.bool "self-describing" true
        (contains line "\"event\": \"unit.test\"");
      check Alcotest.bool "timestamped" true (contains line "\"ts_ns\""))
    tail

let test_query_record_shape () =
  with_plane @@ fun () ->
  Obs.Events.query_completed ~trace_id:42 ~kind:"stgq" ~initiator:7
    ~params:[ ("p", 3); ("s", 2); ("k", 1); ("m", 4) ]
    ~rung:"anytime-best" ~outcome:"degraded" ~gap:0.25 ~trip:"deadline"
    ~retries:1 ~latency_ns:5e6 ~cache_hit:true ~journalled_bytes:0 ();
  match Obs.Events.tail 1 with
  | [ line ] ->
      List.iter
        (fun needle ->
          check Alcotest.bool (needle ^ " present") true (contains line needle))
        [
          "\"event\": \"query\"";
          "\"trace_id\": 42";
          "\"kind\": \"stgq\"";
          "\"initiator\": 7";
          "\"p\": 3";
          "\"s\": 2";
          "\"k\": 1";
          "\"m\": 4";
          "\"rung\": \"anytime-best\"";
          "\"outcome\": \"degraded\"";
          "\"gap\": 0.25";
          "\"trip\": \"deadline\"";
          "\"retries\": 1";
          "\"cache_hit\": true";
          "\"journalled_bytes\": 0";
        ]
  | other -> Alcotest.failf "expected one record, got %d" (List.length other)

let test_sink_rotation_discipline () =
  with_plane @@ fun () ->
  let dir = Filename.temp_dir "stgq_events_test" "" in
  Obs.Events.configure ~dir ~max_bytes:256 ~generations:2
    ~fsync:Obs.Events.Every_record ();
  (* each record is ~90 bytes; 40 of them forces several rotations *)
  for i = 1 to 40 do
    Obs.Events.emit ~kind:"unit.rotate" [ ("seq", string_of_int i) ]
  done;
  Obs.Events.stop ();
  check Alcotest.bool "rotations happened" true (Obs.Events.rotations () >= 3);
  let files = Sys.readdir dir |> Array.to_list |> List.sort String.compare in
  let rotated =
    List.filter
      (fun f ->
        String.length f > 7
        && String.sub f 0 7 = "events-"
        && Filename.check_suffix f ".jsonl")
      files
  in
  (* the retention cap prunes old generations as new ones publish *)
  check Alcotest.bool "rotated generations kept" true (List.length rotated >= 1);
  check Alcotest.bool "retention cap enforced" true (List.length rotated <= 2);
  (* fsync latency was observed per record *)
  check Alcotest.bool "fsync histogram fed" true
    (Obs.Histogram.count (Obs.histogram "obs.events.fsync_ns") > 0);
  (* every surviving line is intact JSONL — no torn writes *)
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      if Filename.check_suffix f ".jsonl" then
        In_channel.with_open_text path (fun ic ->
            In_channel.input_lines ic
            |> List.iter (fun line ->
                   check Alcotest.bool
                     (Printf.sprintf "%s line intact" f)
                     true
                     (contains line "\"event\": \"unit.rotate\""))))
    files;
  List.iter (fun f -> Sys.remove (Filename.concat dir f)) files;
  Unix.rmdir dir

let test_events_totals_in_snapshot () =
  with_plane @@ fun () ->
  Obs.Events.emit ~kind:"unit.snap" [];
  let snap = Obs.snapshot () in
  match List.assoc_opt "obs.events.emitted" snap.Obs.counters with
  | Some v -> check Alcotest.int "obs.events.emitted surfaces" 1 v
  | None -> Alcotest.fail "obs.events.emitted missing from snapshot"

(* ------------------------------------------------------------------ *)
(* Runtime sampler.                                                    *)

let test_sample_once_and_history () =
  with_plane @@ fun () ->
  Obs.Runtime.sample_once ();
  (* allocate many small blocks between samples — large arrays go
     straight to the major heap and would not move the minor delta *)
  let acc = ref [] in
  for i = 1 to 10_000 do
    acc := (i, i) :: !acc
  done;
  ignore (Sys.opaque_identity !acc : (int * int) list);
  Obs.Runtime.sample_once ();
  check Alcotest.int "two samples" 2 (Obs.Runtime.samples ());
  let history = Obs.Runtime.history () in
  check Alcotest.int "history holds both" 2 (List.length history);
  (match history with
  | [ first; second ] ->
      check Alcotest.bool "oldest first" true
        (first.Obs.Runtime.m_ts_ns <= second.Obs.Runtime.m_ts_ns);
      check Alcotest.bool "allocation delta seen" true
        (second.Obs.Runtime.m_minor_words > 0.);
      check Alcotest.bool "heap level plausible" true
        (second.Obs.Runtime.m_heap_words > 0)
  | _ -> Alcotest.fail "history shape");
  let json = Obs.Runtime.history_json () in
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " in json") true (contains json needle))
    [
      "\"ts_ns\"";
      "\"minor_words\"";
      "\"major_collections\"";
      "\"heap_words\"";
      "\"pool_queue_depth\"";
      "\"pool_busy_pct\"";
      "\"cache_entries\"";
      "\"server_inflight\"";
    ]

let test_sampler_thread_stops_promptly () =
  with_plane @@ fun () ->
  Obs.Runtime.start ~interval_ms:20 ();
  check Alcotest.bool "running" true (Obs.Runtime.running ());
  (* second start is a no-op, not a second thread *)
  Obs.Runtime.start ~interval_ms:20 ();
  let rec wait n =
    if Obs.Runtime.samples () = 0 && n > 0 then begin
      Unix.sleepf 0.01;
      wait (n - 1)
    end
  in
  wait 300;
  check Alcotest.bool "sampled on its own" true (Obs.Runtime.samples () > 0);
  let t0 = Unix.gettimeofday () in
  Obs.Runtime.stop ();
  let elapsed = Unix.gettimeofday () -. t0 in
  check Alcotest.bool "stopped" false (Obs.Runtime.running ());
  (* prompt even against much longer intervals: the thread sleeps in
     short slices and checks the stop flag *)
  check Alcotest.bool "stop under a second" true (elapsed < 1.0);
  Obs.Runtime.stop () (* idempotent *)

(* ------------------------------------------------------------------ *)
(* Exposition: the flight-recorder routes and edge cases.              *)

let test_new_routes_serve () =
  with_plane @@ fun () ->
  let baseline = Obs.snapshot () in
  let respond path = Obs.Exposition.respond ~baseline path in
  let degraded_id = fake_query ~degraded:true () in
  Obs.Runtime.sample_once ();
  Obs.Events.emit ~kind:"unit.route" [ ("marker", "777123") ];
  (* /traces lists the retained summary *)
  let s, ct, body = respond "/traces" in
  check Alcotest.int "/traces ok" 200 s;
  check Alcotest.bool "/traces json" true (contains ct "application/json");
  check Alcotest.bool "/traces lists the trace" true
    (contains body (string_of_int degraded_id));
  check Alcotest.bool "/traces carries the reason" true
    (contains body "degraded");
  (* /trace/:id serves the stitched tree *)
  let s, _, body = respond (Printf.sprintf "/trace/%d" degraded_id) in
  check Alcotest.int "/trace/:id ok" 200 s;
  check Alcotest.bool "tree json" true (contains body "service.stgq");
  (* /events/tail respects ?n= *)
  let s, ct, body = respond "/events/tail?n=5" in
  check Alcotest.int "/events/tail ok" 200 s;
  check Alcotest.bool "jsonl content type" true (contains ct "application/jsonl");
  check Alcotest.bool "event present" true (contains body "777123");
  (* /metrics/history serves the sampler ring *)
  let s, _, body = respond "/metrics/history" in
  check Alcotest.int "/metrics/history ok" 200 s;
  check Alcotest.bool "history sample served" true (contains body "heap_words")

let test_unretained_trace_is_typed_404 () =
  with_plane @@ fun () ->
  let baseline = Obs.snapshot () in
  (* never-retained id *)
  let s, ct, body = Obs.Exposition.respond ~baseline "/trace/999999" in
  check Alcotest.int "404" 404 s;
  check Alcotest.bool "typed json error" true (contains ct "application/json");
  check Alcotest.bool "names the id" true (contains body "999999");
  check Alcotest.bool "typed reason" true (contains body "not retained");
  (* an admitted-then-evicted id answers the same way *)
  Obs.Flightrec.configure ~capacity:1 ~sample_every:1 ();
  let evicted_id = fake_query () in
  let _survivor = fake_query ~degraded:true () in
  check Alcotest.bool "entry evicted" true
    (Obs.Flightrec.find evicted_id = None);
  let s, _, body =
    Obs.Exposition.respond ~baseline (Printf.sprintf "/trace/%d" evicted_id)
  in
  check Alcotest.int "evicted 404" 404 s;
  check Alcotest.bool "evicted typed reason" true (contains body "not retained");
  (* a non-numeric id is a bad request, not a crash *)
  let s, _, body = Obs.Exposition.respond ~baseline "/trace/bogus" in
  check Alcotest.int "bad id 404" 404 s;
  check Alcotest.bool "bad id typed" true (contains body "bad trace id")

let test_unknown_route_serves_help () =
  with_plane @@ fun () ->
  let baseline = Obs.snapshot () in
  let s, _, body = Obs.Exposition.respond ~baseline "/definitely/not/a/route" in
  check Alcotest.int "404" 404 s;
  (* the 404 body carries the generated index so a curl typo is
     self-correcting *)
  List.iter
    (fun (route, _) ->
      check Alcotest.bool (route ^ " listed in help") true (contains body route))
    Obs.Exposition.routes

let test_concurrent_scrape_vs_sampler () =
  with_plane @@ fun () ->
  Obs.Runtime.start ~interval_ms:1 ();
  let baseline = Obs.snapshot () in
  let scrapers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 50 do
              List.iter
                (fun path ->
                  let s, _, _ = Obs.Exposition.respond ~baseline path in
                  if s <> 200 then Alcotest.failf "%s -> %d under load" path s)
                [ "/metrics"; "/metrics/history"; "/traces"; "/events/tail?n=10" ]
            done;
            true))
  in
  let ok = List.for_all Domain.join scrapers in
  Obs.Runtime.stop ();
  check Alcotest.bool "all scrapes served during sampling" true ok

(* ------------------------------------------------------------------ *)
(* The docs route table is generated, not hand-maintained.             *)

let test_docs_route_table_in_sync () =
  let doc =
    In_channel.with_open_text "../docs/OBSERVABILITY.md" In_channel.input_all
  in
  let table = Obs.Exposition.route_table_markdown () in
  check Alcotest.bool
    "docs/OBSERVABILITY.md embeds Exposition.route_table_markdown () verbatim \
     (regenerate the block if routes changed)"
    true (contains doc table);
  (* and the CLI help body agrees with the same route list *)
  List.iter
    (fun (route, _) ->
      check Alcotest.bool (route ^ " in index body") true
        (contains Obs.Exposition.index_body route))
    Obs.Exposition.routes

let suite =
  [
    Alcotest.test_case "bad outcomes are pinned with stitched trees" `Quick
      test_retention_pins_bad_outcomes;
    Alcotest.test_case "normal queries are reservoir-sampled" `Quick
      test_normal_queries_reservoir_sampled;
    Alcotest.test_case "slow queries pin once the p99 threshold exists" `Quick
      test_slow_queries_pinned_after_threshold;
    Alcotest.test_case "eviction is oldest-unpinned-first" `Quick
      test_eviction_oldest_unpinned_first;
    Alcotest.test_case "refresh re-stitches the server envelope" `Quick
      test_refresh_restitches;
    Alcotest.test_case "event ring and tail ordering" `Quick
      test_events_ring_and_tail;
    Alcotest.test_case "query record carries the full shape" `Quick
      test_query_record_shape;
    Alcotest.test_case "sink rotation follows the durability discipline" `Quick
      test_sink_rotation_discipline;
    Alcotest.test_case "event totals surface in snapshots" `Quick
      test_events_totals_in_snapshot;
    Alcotest.test_case "runtime samples and history json" `Quick
      test_sample_once_and_history;
    Alcotest.test_case "sampler thread stops promptly" `Quick
      test_sampler_thread_stops_promptly;
    Alcotest.test_case "flight-recorder routes serve" `Quick
      test_new_routes_serve;
    Alcotest.test_case "unretained /trace/:id is a typed 404" `Quick
      test_unretained_trace_is_typed_404;
    Alcotest.test_case "unknown route serves the help index" `Quick
      test_unknown_route_serves_help;
    Alcotest.test_case "concurrent scrapes during sampling" `Quick
      test_concurrent_scrape_vs_sampler;
    Alcotest.test_case "docs route table matches the generated one" `Quick
      test_docs_route_table_in_sync;
  ]

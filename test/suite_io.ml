(* Corrupt-input behaviour of the persistence layers: whatever bytes
   arrive, Gio/Sio either parse or raise [Parse_error] with a file and a
   1-based line — never [Failure], [Invalid_argument] or a crash. *)

module G = QCheck.Gen

let check = Alcotest.check

(* --- deterministic fixtures ---------------------------------------- *)

let graph_text =
  Socgraph.Gio.to_string
    (Socgraph.Graph.of_edges 5
       [ (0, 1, 1.5); (1, 2, 2.); (2, 3, 0.5); (0, 4, 3.) ])

let sched_text =
  let horizon = 8 in
  Timetable.Sio.to_string
    (Array.init 3 (fun v ->
         let a = Timetable.Availability.create ~horizon in
         Timetable.Availability.set_free a v (v + 3);
         a))

let expect_gio_error ~name ?file ~line s =
  match Socgraph.Gio.of_string ?file s with
  | _ -> Alcotest.failf "%s: corrupt graph parsed" name
  | exception Socgraph.Gio.Parse_error e ->
      check Alcotest.string (name ^ ": file") (Option.value file ~default:"<string>") e.file;
      check Alcotest.int (name ^ ": line") line e.line;
      check Alcotest.bool (name ^ ": message") true (String.length e.msg > 0)

let expect_sio_error ~name ?file ~line s =
  match Timetable.Sio.of_string ?file s with
  | _ -> Alcotest.failf "%s: corrupt schedule parsed" name
  | exception Timetable.Sio.Parse_error e ->
      check Alcotest.string (name ^ ": file") (Option.value file ~default:"<string>") e.file;
      check Alcotest.int (name ^ ": line") line e.line;
      check Alcotest.bool (name ^ ": message") true (String.length e.msg > 0)

let test_gio_corruptions () =
  expect_gio_error ~name:"empty input" ~line:1 "";
  expect_gio_error ~name:"missing header" ~line:1 "0 1 2.0\n";
  expect_gio_error ~name:"junk tokens" ~file:"net.g" ~line:2
    "# vertices 4\nzero one 1.0\n";
  expect_gio_error ~name:"short edge line" ~line:2 "# vertices 4\n0 1\n";
  expect_gio_error ~name:"self loop" ~line:3 "# vertices 4\n0 1 1.0\n2 2 1.0\n";
  expect_gio_error ~name:"vertex out of range" ~line:2 "# vertices 4\n0 9 1.0\n";
  expect_gio_error ~name:"negative weight" ~line:2 "# vertices 4\n0 1 -2.0\n";
  expect_gio_error ~name:"NaN weight" ~line:2 "# vertices 4\n0 1 nan\n";
  (* the registered printer renders file:line for uncaught errors *)
  let rendered =
    try
      ignore (Socgraph.Gio.of_string ~file:"net.g" "boom" : Socgraph.Graph.t);
      ""
    with e -> Printexc.to_string e
  in
  check Alcotest.bool "printer names the position" true
    (String.length rendered > 0
    && (let has_sub sub =
          let n = String.length rendered and m = String.length sub in
          let rec go i = i + m <= n && (String.sub rendered i m = sub || go (i + 1)) in
          go 0
        in
        has_sub "net.g"))

let test_sio_corruptions () =
  expect_sio_error ~name:"empty input" ~line:1 "";
  expect_sio_error ~name:"missing header" ~line:1 "0: 0101\n";
  expect_sio_error ~name:"bad bit" ~file:"cal.s" ~line:2 "# horizon 4\n0: 01x1\n";
  expect_sio_error ~name:"horizon mismatch" ~line:2 "# horizon 4\n0: 01\n";
  expect_sio_error ~name:"junk line" ~line:2 "# horizon 4\nnot a schedule\n"

let test_roundtrip_still_works () =
  let g = Socgraph.Gio.of_string graph_text in
  check Alcotest.string "graph round-trip" graph_text
    (Socgraph.Gio.to_string g);
  let s = Timetable.Sio.of_string sched_text in
  check Alcotest.string "schedule round-trip" sched_text
    (Timetable.Sio.to_string s)

(* --- property: arbitrary mutations never escape Parse_error --------- *)

let mutate base st =
  let s = Bytes.of_string base in
  let n = Bytes.length s in
  match G.int_bound 4 st with
  | 0 ->
      (* truncate at a random byte *)
      Bytes.sub_string s 0 (G.int_bound n st)
  | 1 ->
      (* flip one byte to a random printable char *)
      if n = 0 then base
      else begin
        Bytes.set s (G.int_bound (n - 1) st)
          (Char.chr (32 + G.int_bound 94 st));
        Bytes.to_string s
      end
  | 2 ->
      (* insert a junk line somewhere *)
      let cut = G.int_bound n st in
      String.concat ""
        [
          Bytes.sub_string s 0 cut;
          "\n@#junk " ^ string_of_int (G.int_bound 999 st) ^ "\n";
          Bytes.sub_string s cut (n - cut);
        ]
  | 3 ->
      (* duplicate the whole payload (duplicate header / ids) *)
      base ^ base
  | _ ->
      (* swap two random bytes *)
      if n < 2 then base
      else begin
        let i = G.int_bound (n - 1) st and j = G.int_bound (n - 1) st in
        let ci = Bytes.get s i in
        Bytes.set s i (Bytes.get s j);
        Bytes.set s j ci;
        Bytes.to_string s
      end

let corrupt_text base =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    (fun st ->
      (* up to three stacked mutations *)
      let rounds = 1 + G.int_bound 2 st in
      let rec go s n = if n = 0 then s else go (mutate s st) (n - 1) in
      go base rounds)

let prop_gio_total =
  Gen.qtest ~count:300 "Gio.of_string: parse or Parse_error, nothing else"
    (corrupt_text graph_text)
    (fun s ->
      match Socgraph.Gio.of_string ~file:"fuzz.g" s with
      | (_ : Socgraph.Graph.t) -> true
      | exception Socgraph.Gio.Parse_error { file; line; _ } ->
          file = "fuzz.g" && line >= 0)

let prop_sio_total =
  Gen.qtest ~count:300 "Sio.of_string: parse or Parse_error, nothing else"
    (corrupt_text sched_text)
    (fun s ->
      match Timetable.Sio.of_string ~file:"fuzz.s" s with
      | (_ : Timetable.Availability.t array) -> true
      | exception Timetable.Sio.Parse_error { file; line; _ } ->
          file = "fuzz.s" && line >= 0)

let suite =
  [
    Alcotest.test_case "Gio rejects corruption with positions" `Quick
      test_gio_corruptions;
    Alcotest.test_case "Sio rejects corruption with positions" `Quick
      test_sio_corruptions;
    Alcotest.test_case "clean round-trips still parse" `Quick
      test_roundtrip_still_works;
    prop_gio_total;
    prop_sio_total;
  ]

(* The stgq-lint engine: one fixture per rule (positive, suppressed,
   clean), the certificate audit, and a self-check that the real lib/
   and bin/ trees are lint-clean at HEAD. *)

let check = Alcotest.check

let lint ?options ?(file = "lib/fixture/fixture.ml") src =
  Lint.Engine.lint_source ?options ~file src

let hits rule findings =
  List.length
    (List.filter (fun (f : Lint.Diag.finding) -> f.rule = rule) findings)

let expect_rule ?options ?file ~rule ?(line = 0) src =
  let findings = lint ?options ?file src in
  check Alcotest.int
    (Printf.sprintf "one %s finding in %S" rule src)
    1 (hits rule findings);
  if line > 0 then
    match
      List.find_opt (fun (f : Lint.Diag.finding) -> f.rule = rule) findings
    with
    | Some f -> check Alcotest.int (rule ^ " line") line f.line
    | None -> Alcotest.fail "finding vanished"

let expect_clean ?options ?file ~rule src =
  check Alcotest.int
    (Printf.sprintf "no %s finding in %S" rule src)
    0
    (hits rule (lint ?options ?file src))

(* R1 -------------------------------------------------------------- *)

let test_partial_call () =
  expect_rule ~rule:"partial-call" ~line:1 "let f xs = List.hd xs";
  expect_rule ~rule:"partial-call" ~line:2 "let g = 1\nlet f o = Option.get o";
  expect_rule ~rule:"partial-call" "let f h = Hashtbl.find h 0";
  (* a Not_found handler makes the lookup total *)
  expect_clean ~rule:"partial-call"
    "let f h = try Hashtbl.find h 0 with Not_found -> 1";
  (* ... but only for the guarded body, not the handler itself *)
  expect_rule ~rule:"partial-call"
    "let f h = try 0 with Not_found -> Hashtbl.find h 0";
  expect_clean ~rule:"partial-call" "let f xs = List.nth_opt xs 0";
  (* Stdlib.-qualified spelling matches too *)
  expect_rule ~rule:"partial-call" "let f xs = Stdlib.List.hd xs"

let test_partial_call_suppressed () =
  expect_clean ~rule:"partial-call"
    "(* lint: allow partial-call *)\nlet f xs = List.hd xs";
  expect_clean ~rule:"partial-call"
    "let f xs = List.hd xs (* lint: allow partial-call *)";
  expect_clean ~rule:"partial-call"
    "(* lint: allow-file partial-call *)\nlet g = 2\n\nlet f xs = List.hd xs";
  expect_clean ~rule:"partial-call"
    "(* lint: allow all *)\nlet f xs = List.hd xs";
  (* an unrelated suppression does not silence it *)
  expect_rule ~rule:"partial-call"
    "(* lint: allow catch-all *)\nlet f xs = List.hd xs"

(* R2 -------------------------------------------------------------- *)

let test_catch_all () =
  expect_rule ~rule:"catch-all" "let f g = try g () with _ -> 0";
  expect_rule ~rule:"catch-all" "let f g = try g () with e -> 0";
  (* re-raising handlers and specific exceptions are fine *)
  expect_clean ~rule:"catch-all" "let f g = try g () with e -> raise e";
  expect_clean ~rule:"catch-all" "let f g = try g () with Failure _ -> 0";
  (* executables may exit; libraries may not *)
  expect_rule ~rule:"catch-all" "let f () = exit 1";
  expect_clean ~rule:"catch-all" ~file:"bin/tool.ml" "let f () = exit 1";
  (* bare failwith in an I/O module loses input position *)
  expect_rule ~rule:"catch-all" ~file:"lib/x/foo_io.ml"
    "let f () = failwith \"boom\"";
  expect_clean ~rule:"catch-all" ~file:"lib/x/foo_io.ml"
    "let f line = failwith (Printf.sprintf \"%d: boom\" line)";
  expect_clean ~rule:"catch-all" ~file:"lib/x/other.ml"
    "let f () = failwith \"boom\""

(* R3 -------------------------------------------------------------- *)

let test_phys_eq () =
  expect_rule ~rule:"phys-eq" "let f a b = a == b";
  expect_rule ~rule:"phys-eq" "let f a b = a != b";
  (* immediates compare by value; int-literal operands are exempt *)
  expect_clean ~rule:"phys-eq" "let f a = a == 0";
  expect_clean ~rule:"phys-eq" "let f a b = a = b"

(* R4 -------------------------------------------------------------- *)

let test_obj_magic () =
  expect_rule ~rule:"obj-magic" ~line:1 "let f x = Obj.magic x";
  expect_clean ~rule:"obj-magic" "let f x = Obj.repr x"

(* R5 -------------------------------------------------------------- *)

let test_ignored_result () =
  expect_rule ~rule:"ignored-result" "let f () = ignore (Sys.getenv \"x\")";
  (* a type annotation documents the deliberate discard *)
  expect_clean ~rule:"ignored-result"
    "let f () = ignore (Sys.getenv \"x\" : string)";
  expect_clean ~rule:"ignored-result" "let f x = ignore x"

(* R6 -------------------------------------------------------------- *)

let test_toplevel_state () =
  expect_rule ~rule:"toplevel-state" "let cache = Hashtbl.create 16";
  expect_rule ~rule:"toplevel-state" "let counter = ref 0";
  (* state created per call is fine *)
  expect_clean ~rule:"toplevel-state" "let make () = Hashtbl.create 16";
  (* executables may hold top-level state *)
  expect_clean ~rule:"toplevel-state" ~file:"bin/tool.ml" "let counter = ref 0";
  expect_clean ~rule:"toplevel-state"
    "let cache = Hashtbl.create 16 (* lint: allow toplevel-state *)";
  (* designated modules are exempt *)
  expect_clean
    ~options:
      { Lint.Engine.default_options with allowed_state_modules = [ "Registry" ] }
    ~file:"lib/x/registry.ml" ~rule:"toplevel-state" "let table = Hashtbl.create 4"

(* R7 -------------------------------------------------------------- *)

let test_missing_mli () =
  let tmp = Filename.temp_dir "stgq_lint_test" "" in
  let libdir = Filename.concat tmp "lib" in
  Sys.mkdir libdir 0o755;
  let ml = Filename.concat libdir "foo.ml" in
  Out_channel.with_open_text ml (fun oc ->
      Out_channel.output_string oc "let x = 1\n");
  let findings = Lint.Engine.lint_paths [ tmp ] in
  check Alcotest.int "missing-mli flagged" 1 (hits "missing-mli" findings);
  Out_channel.with_open_text
    (Filename.concat libdir "foo.mli")
    (fun oc -> Out_channel.output_string oc "val x : int\n");
  check Alcotest.int "mli present" 0
    (hits "missing-mli" (Lint.Engine.lint_paths [ tmp ]))

(* span-balance ----------------------------------------------------- *)

let test_span_balance () =
  expect_rule ~rule:"span-balance" ~line:1
    "let f () = Obs.Trace.start \"phase\"";
  expect_rule ~rule:"span-balance" "let f () = Trace.start \"phase\"";
  (* a finish in the same top-level binding balances the start *)
  expect_clean ~rule:"span-balance"
    "let f g =\n\
    \  let h = Obs.Trace.start \"phase\" in\n\
    \  let r = g () in\n\
    \  Obs.Trace.finish h;\n\
    \  r";
  (* ... but a finish in a different binding does not *)
  expect_rule ~rule:"span-balance"
    "let open_span () = Obs.Trace.start \"phase\"\n\
     let close_span h = Obs.Trace.finish h";
  (* with_span is the recommended shape and needs no finish *)
  expect_clean ~rule:"span-balance"
    "let f g = Obs.Trace.with_span \"phase\" g";
  (* dotted-suffix match, not substring: [restart] is not [start] *)
  expect_clean ~rule:"span-balance" "let f x = restart x";
  expect_clean ~rule:"span-balance"
    "let f () = Obs.Trace.start \"phase\" (* lint: allow span-balance *)"

(* R8 -------------------------------------------------------------- *)

let test_wall_clock () =
  (* solver code must read the monotonic Budget.now_ns *)
  expect_rule ~file:"lib/core/stgselect.ml" ~rule:"wall-clock" ~line:1
    "let t = Unix.gettimeofday ()";
  expect_rule ~file:"lib/engine/pool.ml" ~rule:"wall-clock"
    "let t () = Sys.time ()";
  expect_rule ~file:"lib/core/resilience.ml" ~rule:"wall-clock"
    "let t = Stdlib.Sys.time ()";
  expect_rule ~file:"lib/core/search_core.ml" ~rule:"wall-clock"
    "let t = Unix.time ()";
  (* budget.ml owns the clock; Obs keeps wall time by design (path scope) *)
  expect_clean ~file:"lib/core/budget.ml" ~rule:"wall-clock"
    "let t = Unix.gettimeofday ()";
  expect_clean ~file:"lib/obs/obs.ml" ~rule:"wall-clock"
    "let t = Unix.gettimeofday ()";
  expect_clean ~file:"bin/stgq_cli.ml" ~rule:"wall-clock"
    "let t = Unix.gettimeofday ()";
  expect_clean ~file:"lib/core/stgselect.ml" ~rule:"wall-clock"
    "let t = Budget.now_ns ()"

(* R9 -------------------------------------------------------------- *)

let test_durability_bypass () =
  (* solver state must persist through Store's snapshot + WAL protocol *)
  expect_rule ~file:"lib/core/service.ml" ~rule:"durability-bypass" ~line:1
    "let f oc st = output_string oc st";
  expect_rule ~file:"lib/core/service.ml" ~rule:"durability-bypass"
    "let f p = open_out p";
  expect_rule ~file:"lib/engine/cache.ml" ~rule:"durability-bypass"
    "let f fd b = Unix.write fd b 0 8";
  expect_rule ~file:"lib/core/stgselect.ml" ~rule:"durability-bypass"
    "let f fd s = Unix.single_write fd s 0 1";
  expect_rule ~file:"lib/core/resilience.ml" ~rule:"durability-bypass"
    "let f p = Stdlib.open_out_bin p";
  (* lib/store owns the protocol; CLI/bench reports are out of scope *)
  expect_clean ~file:"lib/store/store.ml" ~rule:"durability-bypass"
    "let f fd b = Unix.write fd b 0 8";
  expect_clean ~file:"bin/stgq_cli.ml" ~rule:"durability-bypass"
    "let f st = output_string (open_out \"report\") st";
  expect_clean ~file:"bench/main.ml" ~rule:"durability-bypass"
    "let f st = output_string (open_out \"BENCH.json\") st";
  (* reads are fine everywhere *)
  expect_clean ~file:"lib/core/service.ml" ~rule:"durability-bypass"
    "let f p = open_in p";
  (* suppressible like any other rule *)
  expect_clean ~file:"lib/core/service.ml" ~rule:"durability-bypass"
    "let f fd b = Unix.write fd b 0 8 (* lint: allow durability-bypass *)";
  expect_clean ~file:"lib/core/stgselect.ml" ~rule:"wall-clock"
    "(* lint: allow wall-clock *)\nlet t = Unix.gettimeofday ()"

(* R10 ------------------------------------------------------------- *)

let test_event_log_bypass () =
  (* serving code must report through Obs.Events or the levelled Log *)
  expect_rule ~file:"lib/server/listener.ml" ~rule:"event-log-bypass" ~line:1
    "let f () = print_endline \"shed\"";
  expect_rule ~file:"lib/server/client.ml" ~rule:"event-log-bypass"
    "let f d = Printf.eprintf \"queue %d\\n\" d";
  expect_rule ~file:"lib/core/service.ml" ~rule:"event-log-bypass"
    "let f () = Format.printf \"done@.\"";
  expect_rule ~file:"lib/core/resilience.ml" ~rule:"event-log-bypass"
    "let f r = Stdlib.prerr_endline r";
  (* the CLI, bench and the rest of lib/core print reports by design *)
  expect_clean ~file:"bin/stgq_cli.ml" ~rule:"event-log-bypass"
    "let f () = print_endline \"report\"";
  expect_clean ~file:"bench/main.ml" ~rule:"event-log-bypass"
    "let f () = Printf.printf \"qps %d\\n\" 3";
  expect_clean ~file:"lib/core/stgselect.ml" ~rule:"event-log-bypass"
    "let f () = print_endline \"debug\"";
  (* formatter-parameterised printers and the levelled Log stay legal *)
  expect_clean ~file:"lib/server/listener.ml" ~rule:"event-log-bypass"
    "let pp ppf r = Format.pp_print_string ppf r";
  expect_clean ~file:"lib/server/listener.ml" ~rule:"event-log-bypass"
    "let f e = Log.warn (fun m -> m \"worker died: %s\" e)";
  (* suppressible like any other rule *)
  expect_clean ~file:"lib/server/listener.ml" ~rule:"event-log-bypass"
    "let f () = print_endline \"x\" (* lint: allow event-log-bypass *)"

(* Certificate audit ------------------------------------------------ *)

let test_uncertified_solver () =
  expect_rule ~rule:"uncertified-solver" ~line:1
    "let answer ti q = Stgselect.solve ti q";
  (* a Validate call in the same binding certifies it *)
  expect_clean ~rule:"uncertified-solver"
    "let answer ti q = Validate.certify_stg ti q (Stgselect.solve ti q)";
  (* ... and so does one reachable through the unit's call graph *)
  expect_clean ~rule:"uncertified-solver"
    "let audit ti q s = Validate.is_valid_stg ti q s\n\
     let answer ti q =\n\
    \  let s = Stgselect.solve ti q in\n\
    \  if audit ti q s then s else None";
  (* an unrelated helper does not *)
  expect_rule ~rule:"uncertified-solver"
    "let audit _ = true\nlet answer ti q = Stgselect.solve ti q";
  (* the solver-defining units are producers, not consumers *)
  expect_clean ~rule:"uncertified-solver" ~file:"lib/core/stgselect.ml"
    "let solve_again ti q = Stgselect.solve ti q";
  expect_clean ~rule:"uncertified-solver"
    "(* lint: allow uncertified-solver *)\nlet answer ti q = Stgselect.solve ti q";
  (* --no-certify turns the audit off *)
  expect_clean
    ~options:{ Lint.Engine.default_options with certify = false }
    ~rule:"uncertified-solver" "let answer ti q = Stgselect.solve ti q"

(* Engine & reporters ----------------------------------------------- *)

let test_parse_error () =
  expect_rule ~rule:"parse-error" "let = ;;"

let test_reporters () =
  let findings = lint "let f xs = List.hd xs" in
  let json = Lint.Diag.report_json findings in
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "json names the rule" true
    (contains ~needle:"\"rule\":\"partial-call\"" json);
  check Alcotest.bool "json names the file" true
    (contains ~needle:"lib/fixture/fixture.ml" json);
  let human = Lint.Diag.report_human findings in
  check Alcotest.bool "human has a summary" true
    (contains ~needle:"1 finding(s), 1 error(s)" human);
  check Alcotest.bool "human is file:line:col" true
    (contains ~needle:"lib/fixture/fixture.ml:1:" human)

(* Self-check: the tree we ship is lint-clean.  The sources are staged
   next to the test via the dune deps; the @lint alias re-checks the
   same invariant against the source tree on every `dune runtest`. *)
let test_head_is_clean () =
  if not (Sys.file_exists "../lib" && Sys.file_exists "../bin") then
    Alcotest.skip ()
  else begin
    let findings = Lint.Engine.lint_paths [ "../lib"; "../bin" ] in
    List.iter (fun f -> print_endline (Lint.Diag.to_human f)) findings;
    check Alcotest.int "lib/ and bin/ are lint-clean" 0 (List.length findings)
  end

let suite =
  [
    Alcotest.test_case "R1 partial calls" `Quick test_partial_call;
    Alcotest.test_case "R1 suppression" `Quick test_partial_call_suppressed;
    Alcotest.test_case "R2 catch-all / exit / io failwith" `Quick test_catch_all;
    Alcotest.test_case "R3 physical equality" `Quick test_phys_eq;
    Alcotest.test_case "R4 Obj.magic" `Quick test_obj_magic;
    Alcotest.test_case "R5 ignored result" `Quick test_ignored_result;
    Alcotest.test_case "R6 top-level state" `Quick test_toplevel_state;
    Alcotest.test_case "R7 missing mli" `Quick test_missing_mli;
    Alcotest.test_case "span balance" `Quick test_span_balance;
    Alcotest.test_case "R8 wall clock in solver code" `Quick test_wall_clock;
    Alcotest.test_case "R9 durability bypass in solver code" `Quick
      test_durability_bypass;
    Alcotest.test_case "R10 event-log bypass in serving code" `Quick
      test_event_log_bypass;
    Alcotest.test_case "certificate audit" `Quick test_uncertified_solver;
    Alcotest.test_case "parse errors are findings" `Quick test_parse_error;
    Alcotest.test_case "reporters" `Quick test_reporters;
    Alcotest.test_case "HEAD is lint-clean" `Quick test_head_is_clean;
  ]

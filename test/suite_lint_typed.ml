(* The typed interprocedural analyses: fixture units are typechecked
   in memory (Typemod over the ambient stdlib), so each test states its
   scenario as plain source.  Fixtures carry local [Pool]/[Budget] stub
   modules — the analyzer matches spawn and checkpoint callees by
   qualified-name suffix, so [Fixture.Pool.submit] counts as a spawn
   exactly like [Engine.Pool.submit] does in the real tree. *)

let check = Alcotest.check

let typecheck_init = lazy (Compmisc.init_path ())

(* Typecheck [src] as compilation unit [modname].  [file] becomes the
   recorded source path (suppression directives are read back from it,
   so tests that exercise suppression write the source to disk first). *)
let typecheck ?file ~modname src =
  Lazy.force typecheck_init;
  let file =
    match file with Some f -> f | None -> String.uncapitalize_ascii modname ^ ".ml"
  in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  let past = Parse.implementation lexbuf in
  let env = Compmisc.initial_env () in
  match Typemod.type_structure env past with
  | str, _, _, _, _ ->
      Lint_typed.Cmt_load.of_structure ~modname ~source:file str
  | exception exn ->
      Location.report_exception Format.str_formatter exn;
      Alcotest.failf "fixture does not typecheck: %s"
        (Format.flush_str_formatter ())

let options =
  {
    Lint_typed.Typed_check.paths = [];
    allow_domain = [];
    checkpoint_roots = [ "Fixture" ];
    checkpoint_scope = None;
  }

let analyze ?file src =
  Lint_typed.Typed_check.analyze ~options [ typecheck ?file ~modname:"Fixture" src ]

let hits rule findings =
  List.length
    (List.filter (fun (f : Lint.Diag.finding) -> f.rule = rule) findings)

let expect ~rule ~n ?chain_has src =
  let findings = analyze src in
  check Alcotest.int
    (Printf.sprintf "%d %s finding(s) [%s]" n rule
       (String.concat " || " (List.map Lint.Diag.to_human findings)))
    n (hits rule findings);
  match chain_has with
  | None -> ()
  | Some needle ->
      let in_chain (f : Lint.Diag.finding) =
        f.rule = rule
        && List.exists
             (fun step ->
               let rec has i =
                 i + String.length needle <= String.length step
                 && (String.sub step i (String.length needle) = needle
                    || has (i + 1))
               in
               has 0)
             f.chain
      in
      check Alcotest.bool
        (Printf.sprintf "witness chain mentions %S" needle)
        true
        (List.exists in_chain findings)

let pool_stub = "module Pool = struct let submit f = f () end\n"

let budget_stub =
  "module Budget = struct let check () = (None : int option) end\n"

(* ---------------- domain-safety ---------------- *)

let test_racy_ref () =
  expect ~rule:"domain-safety" ~n:1 ~chain_has:"closure passed to"
    (pool_stub
   ^ {|
let racy () =
  let counter = ref 0 in
  Pool.submit (fun () -> counter := !counter + 1);
  !counter
|})

let test_mutex_protected () =
  expect ~rule:"domain-safety" ~n:0
    (pool_stub
   ^ {|
let safe () =
  let counter = ref 0 in
  let lock = Mutex.create () in
  Pool.submit (fun () ->
      Mutex.lock lock;
      incr counter;
      Mutex.unlock lock);
  Mutex.lock lock;
  let v = !counter in
  Mutex.unlock lock;
  v
|})

let test_mutex_one_branch_only () =
  (* The lock is held on one branch and skipped on the other: the merge
     keeps the weakest path, so the write after the branch is flagged. *)
  expect ~rule:"domain-safety" ~n:1
    (pool_stub
   ^ {|
let half_locked flag =
  let counter = ref 0 in
  let lock = Mutex.create () in
  Pool.submit (fun () ->
      if flag then Mutex.lock lock;
      incr counter;
      if flag then Mutex.unlock lock);
  ()
|})

let test_atomic () =
  expect ~rule:"domain-safety" ~n:0
    (pool_stub
   ^ {|
let safe () =
  let counter = Atomic.make 0 in
  Pool.submit (fun () -> Atomic.incr counter);
  Atomic.get counter
|})

let test_mutable_record_capture () =
  expect ~rule:"domain-safety" ~n:2 ~chain_has:"captures `c`"
    (pool_stub
   ^ {|
type counter = { mutable n : int }
let run () =
  let c = { n = 0 } in
  Pool.submit (fun () -> c.n <- c.n + 1);
  c.n
|})

let test_record_with_mutex_field () =
  expect ~rule:"domain-safety" ~n:0
    (pool_stub
   ^ {|
type counter = { mutable n : int; lock : Mutex.t }
let run () =
  let c = { n = 0; lock = Mutex.create () } in
  Pool.submit (fun () ->
      Mutex.lock c.lock;
      c.n <- c.n + 1;
      Mutex.unlock c.lock);
  c.n
|})

let test_annotated_record () =
  expect ~rule:"domain-safety" ~n:0
    (pool_stub
   ^ {|
type counter = { mutable n : int } [@@lint.domain_safe]
let run () =
  let c = { n = 0 } in
  Pool.submit (fun () -> c.n <- c.n + 1);
  c.n
|})

let test_global_table_racy () =
  expect ~rule:"domain-safety" ~n:1 ~chain_has:"Hashtbl.replace"
    (pool_stub
   ^ {|
let tbl : (int, int) Hashtbl.t = Hashtbl.create 8
let run () = Pool.submit (fun () -> Hashtbl.replace tbl 1 2)
|})

let test_global_table_sharded_unit () =
  (* The floating attribute declares the whole unit domain-sharded, the
     way lib/obs/registry.ml and trace.ml do. *)
  expect ~rule:"domain-safety" ~n:0
    ("[@@@lint.domain_safe]\n" ^ pool_stub
   ^ {|
let tbl : (int, int) Hashtbl.t = Hashtbl.create 8
let run () = Pool.submit (fun () -> Hashtbl.replace tbl 1 2)
|})

let test_transitive_write () =
  (* The racy write hides two calls deep; the witness names the path. *)
  expect ~rule:"domain-safety" ~n:1 ~chain_has:"Fixture.deep"
    (pool_stub
   ^ {|
let tbl : (int, int) Hashtbl.t = Hashtbl.create 8
let deep () = Hashtbl.replace tbl 1 2
let mid () = deep ()
let run () = Pool.submit (fun () -> mid ())
|})

(* A stub with the future-typed Pool surface: [submit] still takes the
   crossing closure as its last positional argument, so the analyzer
   needs no special case — pin that. *)
let future_pool_stub =
  "module Pool = struct\n\
  \  type 'a future = 'a\n\
  \  let submit f = f ()\n\
  \  let await (f : 'a future) = f\n\
   end\n"

let test_future_submit_racy () =
  expect ~rule:"domain-safety" ~n:1 ~chain_has:"closure passed to"
    (future_pool_stub
   ^ {|
let racy () =
  let counter = ref 0 in
  let fut = Pool.submit (fun () -> incr counter) in
  Pool.await fut;
  !counter
|})

let test_future_submit_atomic_clean () =
  expect ~rule:"domain-safety" ~n:0
    (future_pool_stub
   ^ {|
let safe () =
  let counter = Atomic.make 0 in
  let fut = Pool.submit (fun () -> Atomic.incr counter) in
  Pool.await fut;
  Atomic.get counter
|})

(* [Batch.run]'s [~warm] closure runs on the build domain when the
   batch is pipelined — it is a spawn site by labelled argument, the
   position the extended target table matches. *)
let batch_stub =
  "module Batch = struct\n\
  \  let run ?(warm = fun _ -> ()) ~solve xs =\n\
  \    List.map (fun x -> warm x; solve x) xs\n\
   end\n"

let test_batch_warm_racy () =
  expect ~rule:"domain-safety" ~n:1 ~chain_has:"closure passed to"
    (batch_stub
   ^ {|
let racy xs =
  let warmed = ref 0 in
  Batch.run ~warm:(fun _ -> incr warmed) ~solve:(fun x -> x + 1) xs
|})

let test_batch_warm_atomic_clean () =
  expect ~rule:"domain-safety" ~n:0
    (batch_stub
   ^ {|
let safe xs =
  let warmed = Atomic.make 0 in
  Batch.run ~warm:(fun _ -> Atomic.incr warmed) ~solve:(fun x -> x + 1) xs
|})

let test_batch_solve_not_spawn () =
  (* Only [~warm] crosses domains; [~solve] runs on the caller, so a
     ref captured by it alone must stay unflagged. *)
  expect ~rule:"domain-safety" ~n:0
    (batch_stub
   ^ {|
let caller_side xs =
  let solved = ref 0 in
  Batch.run ~solve:(fun x -> incr solved; x + 1) xs
|})

(* ---------------- checkpoint-coverage ---------------- *)

let test_checkpoint_free_loop () =
  expect ~rule:"checkpoint-coverage" ~n:1 ~chain_has:"cycle:"
    (budget_stub
   ^ {|
let rec solve n = if n = 0 then 0 else solve (n - 1)
let entry () = solve 10
|})

let test_checkpointed_loop () =
  expect ~rule:"checkpoint-coverage" ~n:0
    (budget_stub
   ^ {|
let rec solve n =
  match Budget.check () with
  | Some _ -> 0
  | None -> if n = 0 then 0 else solve (n - 1)
let entry () = solve 10
|})

let test_transitive_checkpoint () =
  expect ~rule:"checkpoint-coverage" ~n:0
    (budget_stub
   ^ {|
let poll () = Budget.check ()
let rec solve n =
  match poll () with
  | Some _ -> 0
  | None -> if n = 0 then 0 else solve (n - 1)
let entry () = solve 10
|})

let test_bounded_annotation () =
  expect ~rule:"checkpoint-coverage" ~n:0
    (budget_stub
   ^ {|
let scan arr =
  let n = Array.length arr in
  let[@lint.bounded] rec go i = if i >= n then 0 else arr.(i) + go (i + 1) in
  go 0
|})

let test_mutual_recursion_cycle () =
  expect ~rule:"checkpoint-coverage" ~n:1
    (budget_stub
   ^ {|
let rec ping n = if n = 0 then 0 else pong (n - 1)
and pong n = if n = 0 then 1 else ping (n - 1)
let entry () = ping 9
|})

(* ---------------- suppression round-trips ---------------- *)

let with_fixture_file src f =
  let file = Filename.temp_file "lint_typed_fixture" ".ml" in
  let oc = open_out file in
  output_string oc src;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove file) (fun () -> f file)

let racy_line_src ~directive =
  pool_stub
  ^ Printf.sprintf
      {|
let racy () =
  let counter = ref 0 in
  Pool.submit (fun () -> counter := 1)%s;
  !counter
|}
      directive

let test_typed_suppression_same_line () =
  let src = racy_line_src ~directive:" (* stgq-lint: allow domain-safety *)" in
  with_fixture_file src (fun file ->
      check Alcotest.int "suppressed on its own line" 0
        (hits "domain-safety" (analyze ~file src)))

let test_typed_suppression_standalone_above () =
  let src =
    pool_stub
    ^ {|
let racy () =
  let counter = ref 0 in
  (* lint: allow domain-safety *)
  Pool.submit (fun () -> counter := 1);
  !counter
|}
  in
  with_fixture_file src (fun file ->
      check Alcotest.int "suppressed from the comment line above" 0
        (hits "domain-safety" (analyze ~file src)))

let test_typed_suppression_wrong_rule_keeps_finding () =
  let src = racy_line_src ~directive:" (* stgq-lint: allow checkpoint-coverage *)" in
  with_fixture_file src (fun file ->
      check Alcotest.int "directive for another rule does not silence" 1
        (hits "domain-safety" (analyze ~file src)))

(* Trailing directives no longer leak onto the following line, and
   standalone ones no longer cover their own (empty) line — pin both
   with the untyped engine, which shares Suppress. *)
let test_trailing_directive_scopes_to_own_line () =
  let src =
    "let a = Obj.magic 0 (* lint: allow obj-magic *)\nlet b = Obj.magic 1\n"
  in
  let findings = Lint.Engine.lint_source ~file:"lib/x/f.ml" src in
  check Alcotest.int "second line still flagged" 1 (hits "obj-magic" findings)

let test_unknown_suppression_warns () =
  let src = "(* lint: allow no-such-rule *)\nlet f x = x + 1\n" in
  let findings = Lint.Engine.lint_source ~file:"lib/x/f.ml" src in
  check Alcotest.int "unknown rule name draws a warning" 1
    (hits "unknown-suppression" findings);
  let src_known = "(* lint: allow obj-magic, domain-safety *)\nlet f x = x + 1\n" in
  check Alcotest.int "known names (incl. typed rules) do not" 0
    (hits "unknown-suppression" (Lint.Engine.lint_source ~file:"lib/x/f.ml" src_known))

(* ---------------- whole-repo smoke ---------------- *)

(* The build tree next to the test dir holds the real .cmts (the test
   executable's library deps compiled them).  Zero typed findings at
   HEAD — same gate as the root @lint-typed alias, minus the dune
   plumbing. *)
let test_repo_smoke () =
  let units, _warn = Lint_typed.Cmt_load.load ~cmt_root:"../lib" in
  if units = [] then ()  (* artefacts not materialised: alias covers it *)
  else
    let findings =
      Lint_typed.Typed_check.analyze
        ~options:Lint_typed.Typed_check.default_options units
    in
    check Alcotest.int
      (String.concat "; "
         (List.map (fun (f : Lint.Diag.finding) -> Lint.Diag.to_human f) findings))
      0 (List.length findings)

let suite =
  [
    Alcotest.test_case "racy ref capture flagged" `Quick test_racy_ref;
    Alcotest.test_case "mutex-protected use clean" `Quick test_mutex_protected;
    Alcotest.test_case "one-branch lock still flagged" `Quick
      test_mutex_one_branch_only;
    Alcotest.test_case "atomic use clean" `Quick test_atomic;
    Alcotest.test_case "mutable record capture flagged" `Quick
      test_mutable_record_capture;
    Alcotest.test_case "record with Mutex.t field clean" `Quick
      test_record_with_mutex_field;
    Alcotest.test_case "domain_safe record annotation clean" `Quick
      test_annotated_record;
    Alcotest.test_case "racy global table flagged" `Quick test_global_table_racy;
    Alcotest.test_case "domain-sharded unit exempt" `Quick
      test_global_table_sharded_unit;
    Alcotest.test_case "transitive write carries witness chain" `Quick
      test_transitive_write;
    Alcotest.test_case "future-typed submit still a spawn site" `Quick
      test_future_submit_racy;
    Alcotest.test_case "future-typed submit with atomic clean" `Quick
      test_future_submit_atomic_clean;
    Alcotest.test_case "Batch.run ~warm racy closure flagged" `Quick
      test_batch_warm_racy;
    Alcotest.test_case "Batch.run ~warm atomic clean" `Quick
      test_batch_warm_atomic_clean;
    Alcotest.test_case "Batch.run ~solve is caller-side" `Quick
      test_batch_solve_not_spawn;
    Alcotest.test_case "checkpoint-free loop flagged" `Quick
      test_checkpoint_free_loop;
    Alcotest.test_case "checkpointed loop clean" `Quick test_checkpointed_loop;
    Alcotest.test_case "transitive checkpoint clean" `Quick
      test_transitive_checkpoint;
    Alcotest.test_case "lint.bounded annotation clean" `Quick
      test_bounded_annotation;
    Alcotest.test_case "mutual recursion cycle flagged" `Quick
      test_mutual_recursion_cycle;
    Alcotest.test_case "typed suppression, same line" `Quick
      test_typed_suppression_same_line;
    Alcotest.test_case "typed suppression, standalone above" `Quick
      test_typed_suppression_standalone_above;
    Alcotest.test_case "suppression names another rule" `Quick
      test_typed_suppression_wrong_rule_keeps_finding;
    Alcotest.test_case "trailing directive scopes to own line" `Quick
      test_trailing_directive_scopes_to_own_line;
    Alcotest.test_case "unknown suppression warns" `Quick
      test_unknown_suppression_warns;
    Alcotest.test_case "whole-repo typed smoke" `Quick test_repo_smoke;
  ]

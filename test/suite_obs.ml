(* The observability layer itself: quantile bounds, domain-shard merges,
   registry semantics, and the end-to-end invariants the instrumented
   stack must keep (hits + misses = lookups; answers never change). *)

open Stgq_core

module G = QCheck.Gen

(* Every test leaves instrumentation disabled, whatever happens. *)
let with_obs f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Histogram quantile bounds.                                          *)

let samples_arb =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_float l))
    G.(list_size (1 -- 120) (float_bound_inclusive 3e9))

let prop_histogram_quantile_bounds =
  Gen.qtest ~count:200 "histogram quantile bounds" samples_arb (fun samples ->
      with_obs (fun () ->
          let h = Obs.Histogram.make "test.hist" in
          List.iter (Obs.Histogram.observe h) samples;
          let n = List.length samples in
          (* Mirror the histogram's whole-ns truncation. *)
          let trunc = List.map (fun v -> float_of_int (int_of_float v)) samples in
          let sorted = List.sort compare trunc in
          let max_sample = List.fold_left Float.max 0. trunc in
          let q p = Obs.Histogram.quantile h p in
          (* The bucketed estimate may overshoot, never undershoot, the
             exact order statistic at the same rank. *)
          let exact p =
            let rank = max 1 (int_of_float (Float.ceil (p *. float_of_int n))) in
            List.nth sorted (rank - 1)
          in
          Obs.Histogram.count h = n
          && q 1.0 = max_sample
          && q 0.5 <= q 0.9
          && q 0.9 <= q 0.99
          && q 0.99 <= q 1.0
          && List.for_all (fun v -> v <= q 1.0) trunc
          && q 0.5 >= exact 0.5
          && q 0.9 >= exact 0.9
          && q 0.99 >= exact 0.99))

let test_histogram_sum_and_reset () =
  with_obs (fun () ->
      let h = Obs.Histogram.make "test.sum" in
      List.iter (Obs.Histogram.observe h) [ 10.; 20.; 30. ];
      Alcotest.check (Alcotest.float 1e-9) "sum" 60. (Obs.Histogram.sum h);
      Alcotest.check Alcotest.int "count" 3 (Obs.Histogram.count h);
      Obs.Histogram.reset h;
      Alcotest.check Alcotest.int "count after reset" 0 (Obs.Histogram.count h);
      Alcotest.check (Alcotest.float 0.) "empty quantile" 0.
        (Obs.Histogram.quantile h 0.99))

(* ------------------------------------------------------------------ *)
(* Counter shard merges across real domains.                           *)

let test_counter_domain_merge () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.merge" in
      let per_domain = [ 1000; 2000; 3000; 4000 ] in
      let workers =
        List.map
          (fun n ->
            Domain.spawn (fun () ->
                for _ = 1 to n do
                  Obs.Counter.incr c
                done))
          per_domain
      in
      List.iter Domain.join workers;
      let total = List.fold_left ( + ) 0 per_domain in
      Alcotest.check Alcotest.int "merged total" total (Obs.Counter.value c);
      (* Merge associativity: any fold order over the shards agrees. *)
      let shards = Obs.Counter.shard_values c in
      Alcotest.check Alcotest.int "left fold" total (Array.fold_left ( + ) 0 shards);
      Alcotest.check Alcotest.int "right fold" total
        (Array.fold_right ( + ) shards 0);
      let pairwise =
        Array.to_list shards
        |> List.rev
        |> List.fold_left (fun acc v -> v + acc) 0
      in
      Alcotest.check Alcotest.int "reversed fold" total pairwise)

let test_disabled_records_nothing () =
  Obs.set_enabled false;
  let c = Obs.Counter.make "test.disabled.counter" in
  let g = Obs.Gauge.make "test.disabled.gauge" in
  let h = Obs.Histogram.make "test.disabled.hist" in
  Obs.Counter.add c 5;
  Obs.Gauge.set g 7;
  Obs.Histogram.observe h 9.;
  Alcotest.check Alcotest.int "counter" 0 (Obs.Counter.value c);
  Alcotest.check Alcotest.int "gauge" 0 (Obs.Gauge.value g);
  Alcotest.check Alcotest.int "gauge hwm" 0 (Obs.Gauge.high_water g);
  Alcotest.check Alcotest.int "histogram" 0 (Obs.Histogram.count h)

let test_gauge_high_water () =
  with_obs (fun () ->
      let g = Obs.Gauge.make "test.hwm" in
      Obs.Gauge.set g 5;
      Obs.Gauge.set g 3;
      Alcotest.check Alcotest.int "level follows last write" 3 (Obs.Gauge.value g);
      Alcotest.check Alcotest.int "high water sticks" 5 (Obs.Gauge.high_water g))

(* ------------------------------------------------------------------ *)
(* Registry semantics.                                                 *)

let test_registry_intern_and_kind_clash () =
  let a = Obs.counter "test.registry.shared" in
  let b = Obs.counter "test.registry.shared" in
  with_obs (fun () ->
      Obs.Counter.incr a;
      Obs.Counter.incr b;
      Alcotest.check Alcotest.int "same interned counter" 2 (Obs.Counter.value a));
  match Obs.gauge "test.registry.shared" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on a metric-kind clash"

let test_span_ring_bounded () =
  with_obs (fun () ->
      let extra = 50 in
      for i = 1 to Obs.Span.capacity + extra do
        Obs.Span.with_ "tick" (fun () -> ignore (i * i : int))
      done;
      Alcotest.check Alcotest.int "total recorded"
        (Obs.Span.capacity + extra)
        (Obs.Span.total_recorded ());
      Alcotest.check Alcotest.int "ring stays bounded" Obs.Span.capacity
        (List.length (Obs.Span.recent ())))

(* ------------------------------------------------------------------ *)
(* Instrumented stack invariants.                                      *)

let prop_cache_invariant =
  Gen.qtest ~count:40 "cache hits + misses = lookups after service workloads"
    (Gen.stg_case ())
    (fun case ->
      with_obs (fun () ->
          let ti = Gen.temporal_instance_of_stg_case case in
          let query = Gen.stgq_of_stg_case case in
          let service = Service.create ~cache_capacity:2 ti in
          let rounds = ref 0 in
          for initiator = 0 to min 3 (case.Gen.sg.Gen.n - 1) do
            for _repeat = 1 to 2 do
              ignore
                (Service.stgq service ~initiator query
                  : Query.stg_solution option);
              ignore
                (Service.sgq service ~initiator (Query.sgq_of_stgq query)
                  : Query.sg_solution option);
              incr rounds
            done
          done;
          let v name = Obs.Counter.value (Obs.counter name) in
          let hits = v "engine.cache.hits" in
          let misses = v "engine.cache.misses" in
          let lookups = v "engine.cache.lookups" in
          let st = Service.cache_stats service in
          hits + misses = lookups
          && lookups = 2 * !rounds
          && st.Service.hits = hits
          && st.Service.misses = misses
          && Obs.Histogram.count (Obs.histogram "service.stgq.latency_ns")
             = !rounds
          && Obs.Histogram.count (Obs.histogram "service.sgq.latency_ns")
             = !rounds
          && Obs.Histogram.count (Obs.histogram "service.certify.latency_ns")
             = 2 * !rounds))

let prop_instrumentation_changes_no_answer =
  Gen.qtest ~count:60 "enabling instrumentation changes no answer"
    (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let q = Gen.stgq_of_stg_case case in
      let sgq = Query.sgq_of_stgq q in
      Obs.set_enabled false;
      let stg_off = Stgselect.solve ti q in
      let sg_off = Sgselect.solve ti.Query.social sgq in
      let stg_on, sg_on =
        with_obs (fun () ->
            (Stgselect.solve ti q, Sgselect.solve ti.Query.social sgq))
      in
      stg_off = stg_on && sg_off = sg_on)

let test_snapshot_reports_required_names () =
  with_obs (fun () ->
      let case = Gen.stg_case_gen (Random.State.make [| Gen.test_seed |]) in
      let ti = Gen.temporal_instance_of_stg_case case in
      let service = Service.create ti in
      ignore
        (Service.stgq service ~initiator:0 (Gen.stgq_of_stg_case case)
          : Query.stg_solution option);
      let snap = Obs.snapshot () in
      let json = Obs.json snap in
      let table = Obs.table snap in
      List.iter
        (fun name ->
          Alcotest.check Alcotest.bool (name ^ " in json") true
            (contains json name);
          Alcotest.check Alcotest.bool (name ^ " in table") true
            (contains table name))
        [
          "engine.cache.lookups";
          "engine.cache.hits";
          "engine.cache.misses";
          "engine.context.builds";
          "search.nodes";
          "search.pruned.distance";
          "service.stgq.latency_ns";
          "service.certify.latency_ns";
        ])

let suite =
  [
    prop_histogram_quantile_bounds;
    Alcotest.test_case "histogram sum and reset" `Quick test_histogram_sum_and_reset;
    Alcotest.test_case "counter merge across domains" `Quick
      test_counter_domain_merge;
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "gauge high-water mark" `Quick test_gauge_high_water;
    Alcotest.test_case "registry interning and kind clash" `Quick
      test_registry_intern_and_kind_clash;
    Alcotest.test_case "span ring stays bounded" `Quick test_span_ring_bounded;
    prop_cache_invariant;
    prop_instrumentation_changes_no_answer;
    Alcotest.test_case "snapshot carries required metrics" `Quick
      test_snapshot_reports_required_names;
  ]

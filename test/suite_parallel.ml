(* Multicore pivot fan-out must match the sequential optimum. *)

open Stgq_core

let close a b = Float.abs (a -. b) <= 1e-6

let prop_parallel_matches_sequential =
  Gen.qtest ~count:60 "parallel STGSelect = sequential" (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let q = Gen.stgq_of_stg_case case in
      let seq = Stgselect.solve ti q in
      let par = Parallel.solve ~domains:4 ti q in
      match (seq, par) with
      | None, None -> true
      | Some a, Some b ->
          close a.Query.st_total_distance b.Query.st_total_distance
          && Validate.is_valid_stg ti q b
      | _ -> false)

(* One pool shared by every iteration of the stress property: queues
   from consecutive cases overlap, exercising saturation and reuse. *)
let stress_pool = lazy (Engine.Pool.create ~size:3 ())

let prop_pooled_matches_unpooled =
  Gen.qtest ~count:60 "pooled serving path = spawn-per-bucket path"
    (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let q = Gen.stgq_of_stg_case case in
      let pool = Lazy.force stress_pool in
      let pooled = Parallel.solve_report ~pool ti q in
      let unpooled =
        Parallel.solve_report_unpooled ~domains:(Engine.Pool.size pool) ti q
      in
      match (pooled.Parallel.solution, unpooled.Parallel.solution) with
      | None, None -> true
      | Some a, Some b ->
          (* Same bucket partitioning, deterministic tie-breaking: the
             two paths must agree exactly, not just on distance. *)
          a.Query.st_attendees = b.Query.st_attendees
          && a.Query.start_slot = b.Query.start_slot
          && close a.Query.st_total_distance b.Query.st_total_distance
          && Validate.is_valid_stg ti q a
      | _ -> false)

exception Boom of int

let test_exception_propagation () =
  Engine.Pool.with_pool ~size:2 @@ fun pool ->
  (* 40 jobs on 2 workers keep the queue saturated; two of them fail. *)
  let thunks =
    List.init 40 (fun i () -> if i = 7 || i = 23 then raise (Boom i) else i)
  in
  let pool_map pool thunks =
    Engine.Pool.await_all (List.map (Engine.Pool.submit pool) thunks)
  in
  (match pool_map pool thunks with
  | _ -> Alcotest.fail "expected the batch to raise"
  | exception Engine.Pool.Task_errors errs ->
      (* Aggregation keeps every failure, in submission-index order. *)
      Alcotest.(check (list int))
        "all failures, input order" [ 7; 23 ]
        (List.map (function Boom i -> i | e -> raise e) errs));
  (* Worker domains must survive a failing batch. *)
  let squares = pool_map pool (List.init 6 (fun i () -> i * i)) in
  Alcotest.check (Alcotest.list Alcotest.int) "pool alive after failure"
    [ 0; 1; 4; 9; 16; 25 ] squares

let test_submission_order_saturated () =
  (* A single worker drains a saturated queue strictly in FIFO order,
     and [await_all] reassembles results positionally regardless. *)
  let pool = Engine.Pool.create ~size:1 () in
  let order = ref [] in
  let lock = Mutex.create () in
  let results =
    Engine.Pool.await_all
      (List.map
         (Engine.Pool.submit pool)
         (List.init 100 (fun i () ->
              Mutex.lock lock;
              order := i :: !order;
              Mutex.unlock lock;
              i)))
  in
  Engine.Pool.shutdown pool;
  let expected = List.init 100 Fun.id in
  Alcotest.check (Alcotest.list Alcotest.int) "positional results" expected results;
  Alcotest.check (Alcotest.list Alcotest.int) "FIFO execution order" expected
    (List.rev !order)

let test_single_domain_degenerates () =
  let case = Gen.stg_case_gen (Random.State.make [| 9 |]) in
  let ti = Gen.temporal_instance_of_stg_case case in
  let q = Gen.stgq_of_stg_case case in
  let report = Parallel.solve_report ~domains:1 ti q in
  Alcotest.check Alcotest.int "one domain" 1 report.Parallel.domains_used;
  let seq = Stgselect.solve ti q in
  Alcotest.check Alcotest.bool "same feasibility" true
    ((seq = None) = (report.Parallel.solution = None))

let test_domain_count_capped_by_pivots () =
  let g = Socgraph.Graph.of_edges 2 [ (0, 1, 1.) ] in
  let horizon = 8 in
  let a () =
    let x = Timetable.Availability.create ~horizon in
    Timetable.Availability.set_free x 0 (horizon - 1);
    x
  in
  let ti = { Query.social = { Query.graph = g; initiator = 0 }; schedules = [| a (); a () |] } in
  (* m=4 over 8 slots -> exactly 2 pivots; ask for 16 domains. *)
  let report = Parallel.solve_report ~domains:16 ti { Query.p = 2; s = 1; k = 0; m = 4 } in
  Alcotest.check Alcotest.bool "capped" true (report.Parallel.domains_used <= 2);
  Alcotest.check Alcotest.bool "solved" true (report.Parallel.solution <> None)

let suite =
  [
    Alcotest.test_case "single domain" `Quick test_single_domain_degenerates;
    Alcotest.test_case "domains capped by pivots" `Quick test_domain_count_capped_by_pivots;
    Alcotest.test_case "exception propagation under load" `Quick
      test_exception_propagation;
    Alcotest.test_case "submission order on a saturated queue" `Quick
      test_submission_order_saturated;
    prop_parallel_matches_sequential;
    prop_pooled_matches_unpooled;
  ]

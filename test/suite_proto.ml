(* Wire-protocol suite: qcheck round-trips pinned per constructor
   (1000 cases each), plus decoder-robustness fuzzing — truncation,
   oversized length declarations, version skew and random byte
   mutations must all land in typed [decode_error]s, never exceptions
   and never attacker-sized allocations. *)

open Stgq_core
module G = QCheck.Gen

(* ------------------------------------------------------------------ *)
(* Generators. *)

let gen_ident st =
  let n = G.int_bound 255 st in
  String.init n (fun _ -> Char.chr (32 + G.int_bound 94 st))

let gen_string st =
  let n = G.int_bound 2000 st in
  String.init n (fun _ -> Char.chr (G.int_bound 255 st))

(* Finite, bit-exact floats (f64 crosses the wire as raw bits, so any
   non-NaN value must round-trip to [Float.equal]). *)
let gen_float st =
  let mag = G.float_bound_inclusive 1e9 st in
  let v = if G.bool st then mag else -.mag in
  if G.bool st then v else Float.of_int (G.int_bound 100000 st) /. 8.

let gen_opt g st = if G.bool st then Some (g st) else None

let gen_policy st =
  {
    Proto.deadline_ms = gen_opt (G.float_bound_inclusive 5000.) st;
    node_limit = gen_opt (fun st -> G.int_bound 0xFFFFFFF st) st;
    degrade = G.bool st;
  }

let gen_avail st =
  let horizon = 1 + G.int_bound 80 st in
  let a = Timetable.Availability.create ~horizon in
  (match G.int_bound 2 st with
  | 0 -> () (* empty slab: all busy *)
  | 1 -> Timetable.Availability.set_free a 0 (horizon - 1) (* full slab *)
  | _ ->
      for i = 0 to horizon - 1 do
        if G.bool st then Timetable.Availability.set_free a i i
      done);
  a

let gen_sgq st =
  { Query.p = 1 + G.int_bound 50 st; s = 1 + G.int_bound 5 st; k = G.int_bound 10 st }

let gen_stgq st =
  let ({ p; s; k } : Query.sgq) = gen_sgq st in
  { Query.p; s; k; m = 1 + G.int_bound 12 st }

let gen_initiator st = G.int_bound 0xFFFFFF st

let gen_hello st =
  Proto.Hello
    { client = gen_ident st; speaks = Proto.min_version + G.int_bound 6 st }
let gen_ping st = Proto.Ping (gen_string st)

let gen_sgq_req st =
  Proto.Sgq
    { initiator = gen_initiator st; q = gen_sgq st; policy = gen_opt gen_policy st }

let gen_stgq_req st =
  Proto.Stgq
    { initiator = gen_initiator st; q = gen_stgq st; policy = gen_opt gen_policy st }

let gen_update st =
  Proto.Update_schedule { vertex = gen_initiator st; avail = gen_avail st }

let gen_request st =
  match G.int_bound 4 st with
  | 0 -> gen_hello st
  | 1 -> gen_ping st
  | 2 -> gen_sgq_req st
  | 3 -> gen_stgq_req st
  | _ -> gen_update st

let gen_rung st =
  match G.int_bound 2 st with
  | 0 -> Resilience.Exact
  | 1 -> Resilience.Anytime_best
  | _ -> Resilience.Heuristic

let gen_reason st =
  match G.int_bound 2 st with
  | 0 -> Budget.Deadline
  | 1 -> Budget.Node_limit
  | _ -> Budget.Cancelled

let gen_attendees st =
  List.init (1 + G.int_bound 30 st) (fun _ -> G.int_bound 0xFFFFFF st)

let gen_sg_solution st =
  { Query.attendees = gen_attendees st; total_distance = gen_float st }

let gen_stg_solution st =
  {
    Query.st_attendees = gen_attendees st;
    st_total_distance = gen_float st;
    start_slot = G.int_bound 1000 st;
  }

let gen_sg_answer st =
  Proto.Sg_answer
    {
      value = gen_opt gen_sg_solution st;
      rung = gen_rung st;
      gap = gen_opt gen_float st;
      retries = G.int_bound 10 st;
      reason = gen_opt gen_reason st;
      certified = G.bool st;
      trace_id = G.int_bound 0xFFFFFF st;
    }

let gen_stg_answer st =
  Proto.Stg_answer
    {
      value = gen_opt gen_stg_solution st;
      rung = gen_rung st;
      gap = gen_opt gen_float st;
      retries = G.int_bound 10 st;
      reason = gen_opt gen_reason st;
      certified = G.bool st;
      trace_id = G.int_bound 0xFFFFFF st;
    }

let gen_server_error st =
  match G.int_bound 4 st with
  | 0 ->
      Proto.Overloaded
        { queue_depth = G.int_bound 1000 st; limit = 1 + G.int_bound 64 st }
  | 1 -> Proto.Degraded { reason = gen_reason st; retries = G.int_bound 10 st }
  | 2 ->
      Proto.Unavailable { message = gen_string st; retries = G.int_bound 10 st }
  | 3 -> Proto.Bad_request { message = gen_string st }
  | _ -> Proto.Unsupported_version { server_version = G.int_bound 255 st }

let gen_response st =
  match G.int_bound 5 st with
  | 0 -> Proto.Hello_ok { version = Proto.version }
  | 1 -> Proto.Pong (gen_string st)
  | 2 -> gen_sg_answer st
  | 3 -> gen_stg_answer st
  | 4 -> Proto.Updated { vertex = gen_initiator st }
  | _ -> Proto.Failed (gen_server_error st)

let req_arb gen = QCheck.make ~print:(Format.asprintf "%a" Proto.pp_request) gen
let resp_arb gen = QCheck.make ~print:(Format.asprintf "%a" Proto.pp_response) gen

(* ------------------------------------------------------------------ *)
(* Round-trips: one pinned property per constructor, 1000 cases each. *)

let req_roundtrip m =
  match Proto.decode_request (Proto.encode_request m) with
  | Ok m' -> Proto.equal_request m m'
  | Error _ -> false

let resp_roundtrip m =
  match Proto.decode_response (Proto.encode_response m) with
  | Ok m' -> Proto.equal_response m m'
  | Error _ -> false

let roundtrips =
  List.map
    (fun (name, gen) ->
      Gen.qtest ~count:1000
        (Printf.sprintf "request %s round-trips" name)
        (req_arb gen) req_roundtrip)
    [
      ("Hello", gen_hello);
      ("Ping", gen_ping);
      ("Sgq", gen_sgq_req);
      ("Stgq", gen_stgq_req);
      ("Update_schedule", gen_update);
    ]
  @ List.map
      (fun (name, gen) ->
        Gen.qtest ~count:1000
          (Printf.sprintf "response %s round-trips" name)
          (resp_arb gen) resp_roundtrip)
      [
        ("Hello_ok", fun st -> Proto.Hello_ok { version = G.int_bound 255 st });
        ("Pong", fun st -> Proto.Pong (gen_string st));
        ("Sg_answer", gen_sg_answer);
        ("Stg_answer", gen_stg_answer);
        ("Updated", fun st -> Proto.Updated { vertex = gen_initiator st });
        ("Failed", fun st -> Proto.Failed (gen_server_error st));
      ]

(* Pinned edge cases the generators only hit probabilistically. *)

let pinned_roundtrips () =
  let check_req m =
    Alcotest.check Alcotest.bool
      (Format.asprintf "%a" Proto.pp_request m)
      true (req_roundtrip m)
  in
  let check_resp m =
    Alcotest.check Alcotest.bool
      (Format.asprintf "%a" Proto.pp_response m)
      true (resp_roundtrip m)
  in
  (* max-length identifier (255 bytes) and the empty one *)
  check_req (Proto.Hello { client = String.make 255 'x'; speaks = Proto.version });
  check_req (Proto.Hello { client = ""; speaks = 1 });
  check_req (Proto.Ping "");
  (* empty (all-busy) and full (all-free) availability slabs, with a
     horizon that is not a multiple of 8 so the last byte is partial *)
  let busy = Timetable.Availability.create ~horizon:37 in
  check_req (Proto.Update_schedule { vertex = 0; avail = busy });
  let free = Timetable.Availability.create ~horizon:37 in
  Timetable.Availability.set_free free 0 36;
  check_req (Proto.Update_schedule { vertex = 12; avail = free });
  let one = Timetable.Availability.create ~horizon:8 in
  Timetable.Availability.set_free one 7 7;
  check_req (Proto.Update_schedule { vertex = 1; avail = one });
  (* every rung x reason x value-presence combination *)
  List.iter
    (fun rung ->
      List.iter
        (fun reason ->
          List.iter
            (fun value ->
              check_resp
                (Proto.Sg_answer
                   {
                     value;
                     rung;
                     gap = Some 0.25;
                     retries = 2;
                     reason;
                     certified = true;
                     trace_id = 0;
                   }))
            [ None; Some { Query.attendees = [ 0; 3; 9 ]; total_distance = 7.5 } ])
        [ None; Some Budget.Deadline; Some Budget.Node_limit; Some Budget.Cancelled ])
    [ Resilience.Exact; Resilience.Anytime_best; Resilience.Heuristic ];
  (* every typed server error *)
  List.iter
    (fun e -> check_resp (Proto.Failed e))
    [
      Proto.Overloaded { queue_depth = 65; limit = 64 };
      Proto.Degraded { reason = Budget.Deadline; retries = 3 };
      Proto.Unavailable { message = "injected fault: context_build"; retries = 2 };
      Proto.Bad_request { message = "initiator 99 out of range" };
      Proto.Unsupported_version { server_version = 1 };
    ]

(* ------------------------------------------------------------------ *)
(* Cross-version compatibility: the v1 framing must keep round-tripping
   byte-for-byte so old clients and servers interoperate with this
   build (docs/PROTOCOL.md). *)

let strip_version_fields = function
  | Proto.Hello { client; _ } -> Proto.Hello { client; speaks = 1 }
  | req -> req

let strip_trace_id = function
  | Proto.Sg_answer a -> Proto.Sg_answer { a with trace_id = 0 }
  | Proto.Stg_answer a -> Proto.Stg_answer { a with trace_id = 0 }
  | resp -> resp

(* Encoding at min_version and decoding with this build loses exactly
   the v2 fields: [speaks] decodes as 1, [trace_id] as 0. *)
let prop_v1_request_compat =
  Gen.qtest ~count:500 "v1-encoded requests decode with v2 fields defaulted"
    (req_arb gen_request) (fun m ->
      match
        Proto.decode_request
          (Proto.encode_request ~version:Proto.min_version m)
      with
      | Ok m' -> Proto.equal_request (strip_version_fields m) m'
      | Error _ -> false)

let prop_v1_response_compat =
  Gen.qtest ~count:500 "v1-encoded answers decode without a trace id"
    (resp_arb gen_response) (fun m ->
      match
        Proto.decode_response
          (Proto.encode_response ~version:Proto.min_version m)
      with
      | Ok m' -> Proto.equal_response (strip_trace_id m) m'
      | Error _ -> false)

(* The v1 wire image of an answer must not contain the trace-id field at
   all — an old client reads the exact bytes it always did. *)
let v1_answer_omits_trace_id () =
  let answer trace_id =
    Proto.Stg_answer
      {
        value =
          Some
            {
              Query.st_attendees = [ 1; 2; 3 ];
              st_total_distance = 9.5;
              start_slot = 4;
            };
        rung = Resilience.Exact;
        gap = Some 0.;
        retries = 0;
        reason = None;
        certified = true;
        trace_id;
      }
  in
  let v1_with id =
    Proto.encode_response ~version:Proto.min_version (answer id)
  in
  Alcotest.check Alcotest.string "v1 frames are trace-id-free" (v1_with 0)
    (v1_with 123456);
  let v2 = Proto.encode_response (answer 123456) in
  Alcotest.check Alcotest.int "v2 spends exactly 4 bytes on the trace id"
    (String.length (v1_with 0) + 4)
    (String.length v2);
  (* decoding the v2 frame recovers the id *)
  match Proto.decode_response v2 with
  | Ok (Proto.Stg_answer { trace_id; _ }) ->
      Alcotest.check Alcotest.int "v2 decode recovers the id" 123456 trace_id
  | _ -> Alcotest.fail "v2 frame did not decode"

let out_of_range_version_rejected () =
  (match Proto.encode_request ~version:(Proto.version + 1) (Proto.Ping "x") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "future version accepted by the encoder");
  (match Proto.encode_request ~version:0 (Proto.Ping "x") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "version 0 accepted by the encoder")

(* ------------------------------------------------------------------ *)
(* Decoder robustness. *)

(* Every strict prefix of a valid frame is a typed truncation. *)
let prop_truncation =
  Gen.qtest ~count:500 "truncated frames decode to Truncated"
    (QCheck.make
       ~print:(fun (m, cut) ->
         Format.asprintf "%a cut at %d" Proto.pp_request m cut)
       (fun st ->
         let m = gen_request st in
         let frame = Proto.encode_request m in
         (m, G.int_bound (String.length frame - 1) st)))
    (fun (m, cut) ->
      let frame = Proto.encode_request m in
      match Proto.decode_request (String.sub frame 0 cut) with
      | Error (Proto.Truncated _) -> true
      | Ok _ | Error _ -> false)

let oversized_length () =
  let header declared =
    String.init 4 (fun i ->
        Char.chr ((declared lsr ((3 - i) * 8)) land 0xFF))
  in
  (match Proto.decode_frame_length (header (Proto.max_frame + 1)) with
  | Error (Proto.Frame_too_large { declared; limit }) ->
      Alcotest.check Alcotest.int "declared" (Proto.max_frame + 1) declared;
      Alcotest.check Alcotest.int "limit" Proto.max_frame limit
  | Ok _ | Error _ -> Alcotest.fail "max_frame + 1 accepted");
  (match Proto.decode_frame_length (header 0xFFFFFFFF) with
  | Error (Proto.Frame_too_large _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "0xFFFFFFFF accepted");
  (* exactly max_frame is fine at the header layer *)
  match Proto.decode_frame_length (header Proto.max_frame) with
  | Ok n -> Alcotest.check Alcotest.int "max_frame accepted" Proto.max_frame n
  | Error _ -> Alcotest.fail "max_frame rejected"

(* A declared availability horizon far beyond the actual payload must
   be rejected by the bounds check *before* the slab is allocated:
   decoding stays fast and small regardless of the declared size. *)
let hostile_horizon () =
  let b = Buffer.create 16 in
  Buffer.add_char b (Char.chr Proto.version);
  Buffer.add_char b '\005' (* Update_schedule tag *);
  Buffer.add_string b "\000\000\000\001" (* vertex 1 *);
  Buffer.add_string b "\255\255\255\000" (* horizon ~4.3e9 slots *);
  match Proto.decode_request_payload (Buffer.contents b) with
  | Error (Proto.Truncated _) -> ()
  | Ok _ -> Alcotest.fail "hostile horizon decoded"
  | Error e -> Alcotest.fail (Proto.string_of_decode_error e)

let wrong_version () =
  let frame = Bytes.of_string (Proto.encode_request (Proto.Ping "hi")) in
  Bytes.set frame Proto.header_bytes (Char.chr (Proto.version + 1));
  match Proto.decode_request (Bytes.to_string frame) with
  | Error (Proto.Bad_version { got }) ->
      Alcotest.check Alcotest.int "got" (Proto.version + 1) got
  | Ok _ -> Alcotest.fail "version skew accepted"
  | Error e -> Alcotest.fail (Proto.string_of_decode_error e)

let trailing_bytes () =
  let frame = Proto.encode_request (Proto.Ping "hi") ^ "!" in
  match Proto.decode_request frame with
  | Error (Proto.Trailing_bytes { extra }) ->
      Alcotest.check Alcotest.int "extra" 1 extra
  | Ok _ -> Alcotest.fail "trailing byte accepted"
  | Error e -> Alcotest.fail (Proto.string_of_decode_error e)

(* Random single-byte mutations: decoding must return, never raise.
   (The result may legitimately be [Ok] — most bytes are payload.) *)
let mutation_total name decode encode =
  let arb =
    QCheck.make
      ~print:(fun (frame, pos, byte) ->
        Printf.sprintf "frame %S, byte %d := %d" frame pos byte)
      (fun st ->
        let frame = encode st in
        (frame, G.int_bound (String.length frame - 1) st, G.int_bound 255 st))
  in
  Gen.qtest ~count:1000 name arb (fun (frame, pos, byte) ->
      let mutated = Bytes.of_string frame in
      Bytes.set mutated pos (Char.chr byte);
      match decode (Bytes.to_string mutated) with Ok _ | Error _ -> true)

let prop_mutation_req =
  mutation_total "request byte mutations never raise" Proto.decode_request
    (fun st -> Proto.encode_request (gen_request st))

let prop_mutation_resp =
  mutation_total "response byte mutations never raise" Proto.decode_response
    (fun st -> Proto.encode_response (gen_response st))

(* Pure noise: arbitrary bytes through the payload decoders. *)
let prop_garbage =
  Gen.qtest ~count:1000 "random payloads never raise"
    (QCheck.make ~print:(Printf.sprintf "%S") gen_string)
    (fun s ->
      (match Proto.decode_request_payload s with Ok _ | Error _ -> true)
      && (match Proto.decode_response_payload s with Ok _ | Error _ -> true)
      && match Proto.decode_request s with Ok _ | Error _ -> true)

let suite =
  roundtrips
  @ [
      Alcotest.test_case "pinned round-trip corners" `Quick pinned_roundtrips;
      prop_v1_request_compat;
      prop_v1_response_compat;
      Alcotest.test_case "v1 answers omit the trace id" `Quick
        v1_answer_omits_trace_id;
      Alcotest.test_case "out-of-range encode versions rejected" `Quick
        out_of_range_version_rejected;
      prop_truncation;
      Alcotest.test_case "oversized length prefix" `Quick oversized_length;
      Alcotest.test_case "hostile availability horizon" `Quick hostile_horizon;
      Alcotest.test_case "wrong protocol version" `Quick wrong_version;
      Alcotest.test_case "trailing bytes" `Quick trailing_bytes;
      prop_mutation_req;
      prop_mutation_resp;
      prop_garbage;
    ]

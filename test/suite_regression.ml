(* Deterministic replay of the regression corpus: every shrunk QCheck
   counterexample (and hand-reduced bug fixture) lives in
   test/cases/*.case and is re-checked against the brute-force oracles
   on every tier-1 run, so a past failure can never silently reappear.
   Format and workflow: docs/OBSERVABILITY.md, "Regression corpus". *)

open Stgq_core

let close a b = Float.abs (a -. b) <= 1e-6

(* The test stanza runs with cwd _build/default/test ("cases"); the root
   @props rule runs from _build/default ("test/cases"). *)
let cases_dir () =
  List.find_opt
    (fun d -> Sys.file_exists d && Sys.is_directory d)
    [ "cases"; "test/cases" ]

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let replay_sg (sg : Gen.sg_case) =
  let instance = Gen.instance_of_sg_case sg in
  let fast = Sgselect.solve instance sg.Gen.query in
  let brute = (Baseline.sgq_brute instance sg.Gen.query).Baseline.solution in
  match (fast, brute) with
  | None, None -> ()
  | Some f, Some b ->
      Alcotest.check Alcotest.bool "optimal distance" true
        (close f.Query.total_distance b.Query.total_distance);
      Alcotest.check Alcotest.bool "certified valid" true
        (Validate.is_valid_sg instance sg.Gen.query f)
  | Some _, None | None, Some _ ->
      Alcotest.fail "feasibility disagrees with the brute-force oracle"

let replay_stg (stg : Gen.stg_case) =
  let ti = Gen.temporal_instance_of_stg_case stg in
  let q = Gen.stgq_of_stg_case stg in
  let fast = Stgselect.solve ti q in
  let brute = (Baseline.stgq_brute ti q).Baseline.st_solution in
  (match (fast, brute) with
  | None, None -> ()
  | Some f, Some b ->
      Alcotest.check Alcotest.bool "optimal distance" true
        (close f.Query.st_total_distance b.Query.st_total_distance);
      Alcotest.check Alcotest.bool "certified valid" true
        (Validate.is_valid_stg ti q f)
  | Some _, None | None, Some _ ->
      Alcotest.fail "feasibility disagrees with the brute-force oracle");
  (* The parallel fan-out must reproduce the sequential answer too. *)
  let par = Parallel.solve ~domains:3 ti q in
  match (fast, par) with
  | None, None -> ()
  | Some a, Some b ->
      Alcotest.check Alcotest.bool "parallel agrees" true
        (close a.Query.st_total_distance b.Query.st_total_distance)
  | Some _, None | None, Some _ ->
      Alcotest.fail "parallel feasibility diverges from sequential"

let replay path () =
  match Gen.case_of_string (read_file path) with
  | Gen.Sg sg -> replay_sg sg
  | Gen.Stg stg -> replay_stg stg

let corpus_tests =
  match cases_dir () with
  | None ->
      [
        Alcotest.test_case "corpus directory present" `Quick (fun () ->
            Alcotest.fail
              "test/cases/ not found — check the (source_tree cases) dep");
      ]
  | Some dir ->
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".case")
        |> List.sort compare
      in
      Alcotest.test_case "corpus is populated" `Quick (fun () ->
          Alcotest.check Alcotest.bool "at least one .case file" true
            (files <> []))
      :: List.map
           (fun f ->
             Alcotest.test_case f `Quick (replay (Filename.concat dir f)))
           files

let corpus_case_arb =
  QCheck.make ~print:Gen.print_corpus_case (fun st ->
      if QCheck.Gen.bool st then Gen.Sg (Gen.sg_case_gen st)
      else Gen.Stg (Gen.stg_case_gen st))

let prop_corpus_roundtrip =
  Gen.qtest ~count:150 "corpus serialisation round-trips" corpus_case_arb
    (fun case ->
      let text = Gen.case_to_string case in
      Gen.case_to_string (Gen.case_of_string text) = text)

let suite = corpus_tests @ [ prop_corpus_roundtrip ]

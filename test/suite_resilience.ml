(* The resilience stack: Budget trip/latch semantics (including a
   cross-domain cancel), Anytime outcome construction, the differential
   guarantee that an unlimited budget is bit-identical to no budget, the
   degradation ladder's rungs / retries / typed failures with their Obs
   counters, and pool-worker respawn under an injected fault. *)

open Stgq_core

let check = Alcotest.check

(* --- fixtures ----------------------------------------------------- *)

(* A dense deterministic STGQ instance big enough that the exact solver
   crosses several budget checkpoints (256 nodes each). *)
let big_ti, big_q =
  let n = 22 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v, float_of_int (1 + ((u + (3 * v)) mod 19))) :: !edges
    done
  done;
  let horizon = 40 in
  let schedules =
    Array.init n (fun v ->
        let a = Timetable.Availability.create ~horizon in
        Timetable.Availability.set_free a (v mod 3) (horizon - 1 - (v mod 2));
        a)
  in
  ( {
      Query.social =
        { Query.graph = Socgraph.Graph.of_edges n !edges; initiator = 0 };
      schedules;
    },
    { Query.p = 10; s = 2; k = 5; m = 3 } )

(* --- Budget ------------------------------------------------------- *)

let test_budget_unlimited () =
  let b = Budget.unlimited in
  check Alcotest.bool "is_unlimited" true (Budget.is_unlimited b);
  check Alcotest.bool "never trips" true (Budget.check b = None);
  check Alcotest.bool "charge is free" true (Budget.charge b 100_000 = None);
  Budget.cancel b;
  check Alcotest.bool "cancel is a no-op" true (not (Budget.cancelled b));
  check Alcotest.bool "still untripped" true (Budget.tripped b = None)

let test_budget_node_limit_latches () =
  let b = Budget.create ~node_limit:10 () in
  check Alcotest.bool "under limit" true (Budget.charge b 8 = None);
  check Alcotest.bool "over limit trips" true
    (Budget.charge b 8 = Some Budget.Node_limit);
  check Alcotest.int "charges accumulate" 16 (Budget.nodes_charged b);
  (* the first cause latches: a later cancel cannot rewrite history *)
  Budget.cancel b;
  check Alcotest.bool "reason latched" true
    (Budget.tripped b = Some Budget.Node_limit)

let test_budget_deadline () =
  let expired = Budget.within_ms 0 in
  check Alcotest.bool "already expired" true
    (Budget.check expired = Some Budget.Deadline);
  let roomy = Budget.within_ms 60_000 in
  check Alcotest.bool "far deadline untripped" true (Budget.check roomy = None);
  match Budget.remaining_ns roomy with
  | None -> Alcotest.fail "deadline budget must report remaining time"
  | Some ns -> check Alcotest.bool "remaining positive" true (ns > 0L)

let test_budget_cross_domain_cancel () =
  let flag = Atomic.make false in
  let b = Budget.create ~cancel:flag () in
  check Alcotest.bool "initially live" true (Budget.check b = None);
  let d = Domain.spawn (fun () -> Budget.cancel b) in
  Domain.join d;
  check Alcotest.bool "cancel visible across domains" true
    (Budget.check b = Some Budget.Cancelled);
  check Alcotest.bool "external flag observed" true (Atomic.get flag)

(* --- Anytime ------------------------------------------------------ *)

let test_anytime_make () =
  let gap_of _ = 2.5 in
  (match Anytime.make ~completion:None ~gap_of (Some 7) with
  | Anytime.Optimal (Some 7) -> ()
  | _ -> Alcotest.fail "complete run with answer must be Optimal");
  (match Anytime.make ~completion:None ~gap_of None with
  | Anytime.Optimal None -> ()
  | _ -> Alcotest.fail "complete run without answer is proven infeasible");
  (match Anytime.make ~completion:(Some Budget.Deadline) ~gap_of (Some 7) with
  | Anytime.Feasible_best { best = 7; gap; reason = Budget.Deadline } ->
      check (Alcotest.float 1e-9) "gap from gap_of" 2.5 gap
  | _ -> Alcotest.fail "truncated run with incumbent must be Feasible_best");
  match Anytime.make ~completion:(Some Budget.Node_limit) ~gap_of None with
  | Anytime.Exhausted Budget.Node_limit -> ()
  | _ -> Alcotest.fail "truncated run without incumbent must be Exhausted"

(* --- budgeted solves ---------------------------------------------- *)

(* An already-expired deadline must return promptly with a typed
   truncation — never hang, never raise — and any carried answer must
   still be feasible. *)
let test_expired_deadline_prompt_and_valid () =
  let report = Stgselect.solve_report ~budget:(Budget.within_ms 0) big_ti big_q in
  check Alcotest.bool "truncated" true (not (Anytime.complete report.outcome));
  check Alcotest.bool "reason is deadline" true
    (Anytime.reason report.outcome = Some Budget.Deadline);
  match Anytime.solution report.outcome with
  | None -> ()
  | Some s ->
      check Alcotest.bool "anytime answer is feasible" true
        (Validate.is_valid_stg big_ti big_q s)

let test_node_limit_anytime () =
  let budget = Budget.create ~node_limit:1 () in
  let report = Stgselect.solve_report ~budget big_ti big_q in
  (* the instance crosses the first checkpoint, so the cap must bite *)
  check Alcotest.bool "node budget tripped" true
    (Budget.tripped budget = Some Budget.Node_limit);
  match report.outcome with
  | Anytime.Optimal _ -> Alcotest.fail "tripped solve cannot claim optimality"
  | Anytime.Exhausted Budget.Node_limit -> ()
  | Anytime.Exhausted r ->
      Alcotest.failf "wrong exhaustion reason %s" (Budget.reason_name r)
  | Anytime.Feasible_best { best; gap; reason } ->
      check Alcotest.bool "reason is node limit" true (reason = Budget.Node_limit);
      check Alcotest.bool "gap bound is non-negative" true (gap >= 0.);
      check Alcotest.bool "incumbent is feasible" true
        (Validate.is_valid_stg big_ti big_q best)

let test_parallel_shared_budget () =
  let budget = Budget.create ~node_limit:1 () in
  (* two buckets: each sees well over one checkpoint's worth of nodes *)
  let report = Parallel.solve_report ~domains:2 ~budget big_ti big_q in
  check Alcotest.bool "shared budget tripped" true
    (Budget.tripped budget = Some Budget.Node_limit);
  check Alcotest.bool "no optimality claim" true
    (not (Anytime.complete report.Parallel.outcome));
  match Anytime.solution report.Parallel.outcome with
  | None -> ()
  | Some s ->
      check Alcotest.bool "merged incumbent is feasible" true
        (Validate.is_valid_stg big_ti big_q s)

(* --- differential: unlimited budget is bit-identical --------------- *)

let prop_unlimited_budget_identical =
  Gen.qtest ~count:40 "explicit no-limit budget is bit-identical to no budget"
    (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let q = Gen.stgq_of_stg_case case in
      let bare = Stgselect.solve_report ti q in
      let budgeted =
        Stgselect.solve_report
          ~budget:(Budget.create ~node_limit:max_int ())
          ti q
      in
      bare.solution = budgeted.solution
      && bare.stats.Search_core.nodes = budgeted.stats.Search_core.nodes
      && Anytime.complete budgeted.outcome)

let prop_sg_unlimited_budget_identical =
  Gen.qtest ~count:40 "SGQ: explicit no-limit budget is bit-identical"
    (Gen.sg_case ())
    (fun case ->
      let inst = Gen.instance_of_sg_case case in
      let bare = Sgselect.solve_report inst case.Gen.query in
      let budgeted =
        Sgselect.solve_report ~budget:(Budget.create ~node_limit:max_int ())
          inst case.Gen.query
      in
      bare.solution = budgeted.solution
      && bare.stats.Search_core.nodes = budgeted.stats.Search_core.nodes)

(* Truncated solves never lie: Optimal matches the unbudgeted answer,
   Feasible_best carries a feasible incumbent with a sound gap sign,
   Exhausted carries nothing. *)
let prop_budgeted_outcome_sound =
  Gen.qtest ~count:40 "tight node budget yields a sound outcome"
    (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let q = Gen.stgq_of_stg_case case in
      let report =
        Stgselect.solve_report ~budget:(Budget.create ~node_limit:1 ()) ti q
      in
      match report.outcome with
      | Anytime.Optimal s -> s = Stgselect.solve ti q
      | Anytime.Feasible_best { best; gap; _ } ->
          gap >= 0. && Validate.is_valid_stg ti q best
      | Anytime.Exhausted _ -> report.solution = None)

(* --- the ladder ---------------------------------------------------- *)

let counter name = Obs.Counter.value (Obs.counter name)

let with_obs f =
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let fast_retry =
  { Resilience.default_policy with backoff_ms = 0.01; max_retries = 2 }

let test_ladder_exact () =
  match
    Resilience.run
      ~exact:(fun _ -> Anytime.Optimal (Some 42))
      ~heuristic:(fun _ -> Alcotest.fail "heuristic must not run")
      ()
  with
  | Ok { value = Some 42; rung = Resilience.Exact; gap = Some 0.; retries = 0; reason = None } ->
      ()
  | Ok a ->
      Alcotest.failf "wrong exact answer shape (rung %s)"
        (Resilience.rung_name a.rung)
  | Error e -> Alcotest.failf "unexpected error: %a" Resilience.pp_error e

let test_ladder_anytime_counts () =
  with_obs @@ fun () ->
  let hits0 = counter "service.deadline_hits" in
  let deg0 = counter "service.degraded" in
  (match
     Resilience.run
       ~exact:(fun _ ->
         Anytime.Feasible_best { best = 7; gap = 0.5; reason = Budget.Deadline })
       ~heuristic:(fun _ -> Alcotest.fail "heuristic must not run")
       ()
   with
  | Ok { value = Some 7; rung = Resilience.Anytime_best; gap = Some g; reason = Some Budget.Deadline; _ } ->
      check (Alcotest.float 1e-9) "gap carried" 0.5 g
  | _ -> Alcotest.fail "expected the anytime rung");
  check Alcotest.int "deadline hit counted" (hits0 + 1)
    (counter "service.deadline_hits");
  check Alcotest.int "degradation counted" (deg0 + 1)
    (counter "service.degraded")

let test_ladder_heuristic_rung () =
  match
    Resilience.run
      ~exact:(fun _ -> Anytime.Exhausted Budget.Node_limit)
      ~heuristic:(fun _ -> Some 9)
      ()
  with
  | Ok { value = Some 9; rung = Resilience.Heuristic; gap = None; reason = Some Budget.Node_limit; _ } ->
      ()
  | _ -> Alcotest.fail "expected the heuristic rung"

let test_ladder_degraded () =
  match
    Resilience.run
      ~exact:(fun _ -> Anytime.Exhausted Budget.Node_limit)
      ~heuristic:(fun _ -> None)
      ()
  with
  | Error (Resilience.Degraded { reason = Budget.Node_limit; retries = 0 }) -> ()
  | _ -> Alcotest.fail "an empty heuristic rung must degrade"

let test_ladder_no_degrade_policy () =
  let heuristic_ran = ref false in
  (match
     Resilience.run
       ~policy:{ Resilience.default_policy with degrade = false }
       ~exact:(fun _ -> Anytime.Exhausted Budget.Deadline)
       ~heuristic:(fun _ ->
         heuristic_ran := true;
         Some 1)
       ()
   with
  | Error (Resilience.Degraded { reason = Budget.Deadline; _ }) -> ()
  | _ -> Alcotest.fail "degrade=false must fail typed, not fall through");
  check Alcotest.bool "heuristic rung disabled" false !heuristic_ran

let test_ladder_transient_retry () =
  with_obs @@ fun () ->
  let retries0 = counter "service.retries" in
  let calls = ref 0 in
  (match
     Resilience.run ~policy:fast_retry
       ~exact:(fun _ ->
         incr calls;
         if !calls <= 2 then
           raise
             (Faultinject.Injected_fault
                { site = Faultinject.Context_build; transient = true })
         else Anytime.Optimal (Some 1))
       ~heuristic:(fun _ -> None)
       ()
   with
  | Ok { value = Some 1; rung = Resilience.Exact; retries = 2; _ } -> ()
  | _ -> Alcotest.fail "transient faults within the allowance must retry");
  check Alcotest.int "three attempts" 3 !calls;
  check Alcotest.int "retries counted" (retries0 + 2) (counter "service.retries")

let test_ladder_unavailable () =
  with_obs @@ fun () ->
  let unav0 = counter "service.unavailable" in
  (* a non-transient failure is never retried *)
  let calls = ref 0 in
  (match
     Resilience.run ~policy:fast_retry
       ~exact:(fun _ ->
         incr calls;
         failwith "boom")
       ~heuristic:(fun _ -> None)
       ()
   with
  | Error (Resilience.Unavailable { error = Failure _; retries = 0 }) -> ()
  | _ -> Alcotest.fail "hard faults must surface as Unavailable");
  check Alcotest.int "single attempt" 1 !calls;
  (* a transient fault that outlives the allowance also gives up *)
  (match
     Resilience.run ~policy:fast_retry
       ~exact:(fun _ ->
         raise
           (Faultinject.Injected_fault
              { site = Faultinject.Certify; transient = true }))
       ~heuristic:(fun _ -> None)
       ()
   with
  | Error (Resilience.Unavailable { retries; _ }) ->
      check Alcotest.int "allowance consumed" fast_retry.max_retries retries
  | _ -> Alcotest.fail "exhausted retries must surface as Unavailable");
  check Alcotest.int "unavailability counted" (unav0 + 2)
    (counter "service.unavailable")

let test_ladder_external_cancel () =
  let cancel = Atomic.make true in
  match
    Resilience.run ~cancel
      ~exact:(fun b ->
        Anytime.Exhausted (Option.value (Budget.check b) ~default:Budget.Deadline))
      ~heuristic:(fun b ->
        check Alcotest.bool "heuristic budget shares the flag" true
          (Budget.check b = Some Budget.Cancelled);
        None)
      ()
  with
  | Error (Resilience.Degraded { reason = Budget.Cancelled; _ }) -> ()
  | _ -> Alcotest.fail "a pre-set cancel flag must degrade as Cancelled"

let test_run_heuristic_entry () =
  match Resilience.run_heuristic ~heuristic:(fun _ -> Some "h") () with
  | Ok { value = Some "h"; rung = Resilience.Heuristic; gap = None; reason = None; _ } ->
      ()
  | _ -> Alcotest.fail "run_heuristic must answer on the heuristic rung"

let test_protect () =
  let calls = ref 0 in
  (match
     Resilience.protect ~policy:fast_retry (fun () ->
         incr calls;
         if !calls = 1 then
           raise
             (Faultinject.Injected_fault
                { site = Faultinject.Context_build; transient = true })
         else "ctx")
   with
  | Ok "ctx" -> ()
  | _ -> Alcotest.fail "protect must retry a transient planning fault");
  check Alcotest.int "two attempts" 2 !calls;
  match Resilience.protect ~policy:fast_retry (fun () -> failwith "disk") with
  | Error (Resilience.Unavailable { error = Failure _; _ }) -> ()
  | _ -> Alcotest.fail "protect must classify hard faults as Unavailable"

let test_certify_outcome () =
  let certify = function
    | Some v -> Some (v * 10)
    | None -> None
  in
  (match Resilience.certify_outcome ~certify (Anytime.Optimal (Some 3)) with
  | Anytime.Optimal (Some 30) -> ()
  | _ -> Alcotest.fail "Optimal payload must pass through the certifier");
  (match
     Resilience.certify_outcome ~certify
       (Anytime.Feasible_best { best = 4; gap = 1.; reason = Budget.Deadline })
   with
  | Anytime.Feasible_best { best = 40; _ } -> ()
  | _ -> Alcotest.fail "Feasible_best payload must pass through the certifier");
  match
    Resilience.certify_outcome
      ~certify:(fun _ -> None)
      (Anytime.Feasible_best { best = 4; gap = 1.; reason = Budget.Deadline })
  with
  | Anytime.Exhausted Budget.Deadline -> ()
  | _ -> Alcotest.fail "a vanished incumbent must degrade to Exhausted"

(* --- end to end: resilient service answers under a dead deadline --- *)

let test_service_resilient_deadline () =
  let policy =
    { fast_retry with deadline_ms = Some 0.0001; node_limit = Some 1 }
  in
  let t = Service.create big_ti in
  match
    Service.stgq_r ~policy t ~initiator:0
      { Query.p = big_q.p; s = big_q.s; k = big_q.k; m = big_q.m }
  with
  | exception e ->
      Alcotest.failf "resilient service raised: %s" (Printexc.to_string e)
  | Error (Resilience.Degraded _) -> ()
  | Error (Resilience.Unavailable _) ->
      Alcotest.fail "an expired budget is degradation, not unavailability"
  | Ok a ->
      check Alcotest.bool "a dead deadline cannot claim exactness" true
        (a.Resilience.rung <> Resilience.Exact || a.Resilience.value = None)

(* --- pool supervision ---------------------------------------------- *)

let test_pool_respawn () =
  with_obs @@ fun () ->
  let respawns0 = counter "engine.pool.respawns" in
  let results =
    Faultinject.with_plan "pool_job_start@1" @@ fun () ->
    Engine.Pool.with_pool ~size:2 @@ fun pool ->
    Engine.Pool.await_all
      (List.map (Engine.Pool.submit pool) (List.init 8 (fun i () -> i * i)))
  in
  check
    (Alcotest.list Alcotest.int)
    "batch completes despite the dead worker"
    [ 0; 1; 4; 9; 16; 25; 36; 49 ]
    results;
  check Alcotest.bool "the dead worker was respawned" true
    (counter "engine.pool.respawns" >= respawns0 + 1)

let suite =
  [
    Alcotest.test_case "budget: unlimited never trips" `Quick
      test_budget_unlimited;
    Alcotest.test_case "budget: node limit trips and latches" `Quick
      test_budget_node_limit_latches;
    Alcotest.test_case "budget: deadline" `Quick test_budget_deadline;
    Alcotest.test_case "budget: cross-domain cancel" `Quick
      test_budget_cross_domain_cancel;
    Alcotest.test_case "anytime: outcome construction" `Quick test_anytime_make;
    Alcotest.test_case "expired deadline answers promptly" `Quick
      test_expired_deadline_prompt_and_valid;
    Alcotest.test_case "node limit yields a sound anytime answer" `Quick
      test_node_limit_anytime;
    Alcotest.test_case "parallel solve shares one budget" `Quick
      test_parallel_shared_budget;
    Alcotest.test_case "ladder: exact rung" `Quick test_ladder_exact;
    Alcotest.test_case "ladder: anytime rung + counters" `Quick
      test_ladder_anytime_counts;
    Alcotest.test_case "ladder: heuristic rung" `Quick test_ladder_heuristic_rung;
    Alcotest.test_case "ladder: degraded" `Quick test_ladder_degraded;
    Alcotest.test_case "ladder: degrade=false stops the descent" `Quick
      test_ladder_no_degrade_policy;
    Alcotest.test_case "ladder: transient faults retry" `Quick
      test_ladder_transient_retry;
    Alcotest.test_case "ladder: hard faults are Unavailable" `Quick
      test_ladder_unavailable;
    Alcotest.test_case "ladder: external cancel degrades as Cancelled" `Quick
      test_ladder_external_cancel;
    Alcotest.test_case "ladder: heuristic entry point" `Quick
      test_run_heuristic_entry;
    Alcotest.test_case "protect retries planning faults" `Quick test_protect;
    Alcotest.test_case "certify_outcome re-checks carried answers" `Quick
      test_certify_outcome;
    Alcotest.test_case "service answers under a dead deadline" `Quick
      test_service_resilient_deadline;
    Alcotest.test_case "pool respawns a dead worker" `Quick test_pool_respawn;
    prop_unlimited_budget_identical;
    prop_sg_unlimited_budget_identical;
    prop_budgeted_outcome_sound;
  ]

(* Optimality and validity of SGSelect / STGSelect against brute-force
   oracles — the core guarantee of the paper (Theorems 2 and 3). *)

open Stgq_core

let close a b = Float.abs (a -. b) <= 1e-6

let graph edges n = Socgraph.Graph.of_edges n edges
let inst ?(q = 0) g = { Query.graph = g; initiator = q }

let check = Alcotest.check
let bool_c = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Hand-checked fixtures.                                              *)

let star =
  (* q=0 linked to 1,2,3 with distances 1,2,3; leaves mutually unlinked. *)
  graph [ (0, 1, 1.); (0, 2, 2.); (0, 3, 3.) ] 4

let test_star_k2 () =
  match Sgselect.solve (inst star) { p = 3; s = 1; k = 2 } with
  | Some { attendees; total_distance } ->
      check (Alcotest.list Alcotest.int) "group" [ 0; 1; 2 ] attendees;
      check bool_c "distance" true (close total_distance 3.)
  | None -> Alcotest.fail "expected a solution"

let test_star_k0_infeasible () =
  check bool_c "no clique of 3 in a star" true
    (Sgselect.solve (inst star) { p = 3; s = 1; k = 0 } = None)

let test_clique () =
  let g =
    graph [ (0, 1, 1.); (0, 2, 1.); (0, 3, 1.); (1, 2, 1.); (1, 3, 1.); (2, 3, 1.) ] 4
  in
  match Sgselect.solve (inst g) { p = 4; s = 1; k = 0 } with
  | Some { total_distance; _ } -> check bool_c "distance 3" true (close total_distance 3.)
  | None -> Alcotest.fail "clique should qualify"

let test_two_triangles () =
  let g =
    graph
      [ (0, 1, 1.); (0, 2, 2.); (1, 2, 3.); (0, 3, 10.); (0, 4, 10.); (3, 4, 1.) ]
      5
  in
  match Sgselect.solve (inst g) { p = 3; s = 1; k = 0 } with
  | Some { attendees; total_distance } ->
      check (Alcotest.list Alcotest.int) "cheap triangle" [ 0; 1; 2 ] attendees;
      check bool_c "distance 3" true (close total_distance 3.)
  | None -> Alcotest.fail "expected a solution"

let test_lemma3_printed_bound_is_unsafe () =
  (* Star with three leaves, p=4, k=2: {q,a,b,c} is feasible (each leaf has
     exactly 2 unacquainted others), but the paper's printed Lemma 3 bound
     prunes the root.  The safe correction must find it. *)
  let q = { Query.p = 4; s = 1; k = 2 } in
  (match Sgselect.solve (inst star) q with
  | Some { total_distance; _ } -> check bool_c "safe finds 6" true (close total_distance 6.)
  | None -> Alcotest.fail "safe bound must find the star group");
  let unsafe =
    { Search_core.default_config with Search_core.unsafe_lemma3 = true }
  in
  check bool_c "printed bound prunes the feasible star" true
    (Sgselect.solve ~config:unsafe (inst star) q = None)

let test_radius () =
  let g = graph [ (0, 1, 1.); (1, 2, 2.) ] 3 in
  check bool_c "s=1 cannot reach 2" true
    (Sgselect.solve (inst g) { p = 3; s = 1; k = 2 } = None);
  match Sgselect.solve (inst g) { p = 3; s = 2; k = 1 } with
  | Some { total_distance; _ } -> check bool_c "s=2 distance 4" true (close total_distance 4.)
  | None -> Alcotest.fail "expected a solution at s=2"

let test_hop_bounded_distance () =
  (* Definition 1: with s=1 the direct heavy edge counts; with s=2 the
     2-hop detour is cheaper. *)
  let g = graph [ (0, 1, 10.); (0, 2, 1.); (2, 1, 1.) ] 3 in
  let dist s =
    match Sgselect.solve (inst g) { p = 3; s; k = 0 } with
    | Some { total_distance; _ } -> total_distance
    | None -> Alcotest.fail "expected a solution"
  in
  check bool_c "s=1 pays the direct edge: 10+1" true (close (dist 1) 11.);
  check bool_c "s=2 detours: 2+1" true (close (dist 2) 3.)

let avail_of_runs horizon runs =
  let a = Timetable.Availability.create ~horizon in
  List.iter (fun (lo, hi) -> Timetable.Availability.set_free a lo hi) runs;
  a

let test_stg_disjoint_schedules () =
  let g = graph [ (0, 1, 1.); (0, 2, 2.) ] 3 in
  let horizon = 12 in
  let schedules =
    [|
      avail_of_runs horizon [ (0, 11) ];
      avail_of_runs horizon [ (0, 5) ];
      avail_of_runs horizon [ (6, 11) ];
    |]
  in
  let ti = { Query.social = inst g; schedules } in
  (match Stgselect.solve ti { p = 2; s = 1; k = 1; m = 3 } with
  | Some { st_attendees; st_total_distance; start_slot } ->
      check (Alcotest.list Alcotest.int) "group" [ 0; 1 ] st_attendees;
      check bool_c "distance 1" true (close st_total_distance 1.);
      check bool_c "window inside v1's schedule" true (start_slot + 2 <= 5)
  | None -> Alcotest.fail "expected a solution");
  check bool_c "no common window for all three" true
    (Stgselect.solve ti { p = 3; s = 1; k = 2; m = 3 } = None)

let test_stg_example_shapes () =
  (* A schedule where the only feasible window straddles a pivot but
     starts off-pivot — exercises the pivot-interval scan. *)
  let g = graph [ (0, 1, 1.) ] 2 in
  let horizon = 12 in
  let schedules =
    [| avail_of_runs horizon [ (4, 7) ]; avail_of_runs horizon [ (4, 7) ] |]
  in
  let ti = { Query.social = inst g; schedules } in
  match Stgselect.solve ti { p = 2; s = 1; k = 0; m = 3 } with
  | Some { start_slot; _ } ->
      check bool_c "start in [4,5]" true (start_slot >= 4 && start_slot <= 5)
  | None -> Alcotest.fail "expected a solution"

let test_vacuous_k_is_pure_distance_selection () =
  (* With k = p-1 the acquaintance constraint is vacuous: the optimum is
     simply the p-1 nearest candidates. *)
  let g =
    graph [ (0, 1, 3.); (0, 2, 1.); (0, 3, 7.); (0, 4, 2.) ] 5
  in
  match Sgselect.solve (inst g) { p = 3; s = 1; k = 2 } with
  | Some { attendees; total_distance } ->
      check (Alcotest.list Alcotest.int) "two nearest" [ 0; 2; 4 ] attendees;
      check bool_c "distance 3" true (close total_distance 3.)
  | None -> Alcotest.fail "expected a solution"

let test_isolated_initiator () =
  let g = graph [ (1, 2, 1.) ] 3 in
  check bool_c "p=2 from an isolated q" true
    (Sgselect.solve (inst g) { p = 2; s = 2; k = 1 } = None);
  match Sgselect.solve (inst g) { p = 1; s = 1; k = 0 } with
  | Some { attendees; _ } -> check (Alcotest.list Alcotest.int) "alone" [ 0 ] attendees
  | None -> Alcotest.fail "p=1 is always feasible"

let test_m_one_any_common_slot () =
  let g = graph [ (0, 1, 1.) ] 2 in
  let horizon = 9 in
  let schedules =
    [| avail_of_runs horizon [ (8, 8) ]; avail_of_runs horizon [ (8, 8) ] |]
  in
  let ti = { Query.social = inst g; schedules } in
  match Stgselect.solve ti { p = 2; s = 1; k = 0; m = 1 } with
  | Some { start_slot; _ } -> check Alcotest.int "slot 8" 8 start_slot
  | None -> Alcotest.fail "a single shared slot suffices at m=1"

let test_window_longer_than_horizon () =
  let g = graph [ (0, 1, 1.) ] 2 in
  let horizon = 4 in
  let schedules =
    [| avail_of_runs horizon [ (0, 3) ]; avail_of_runs horizon [ (0, 3) ] |]
  in
  let ti = { Query.social = inst g; schedules } in
  check bool_c "m beyond horizon" true
    (Stgselect.solve ti { p = 2; s = 1; k = 0; m = 5 } = None)

let test_query_validation () =
  let g = graph [ (0, 1, 1.) ] 2 in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Sgselect.solve (inst g) { p = 0; s = 1; k = 0 });
  expect_invalid (fun () -> Sgselect.solve (inst g) { p = 2; s = 0; k = 0 });
  expect_invalid (fun () -> Sgselect.solve (inst g) { p = 2; s = 1; k = -1 });
  expect_invalid (fun () -> Sgselect.solve { Query.graph = g; initiator = 9 } { p = 2; s = 1; k = 0 });
  let ti = { Query.social = inst g; schedules = [| avail_of_runs 4 [] |] } in
  expect_invalid (fun () -> Stgselect.solve ti { p = 2; s = 1; k = 0; m = 2 })

(* ------------------------------------------------------------------ *)
(* Properties.                                                         *)

let agree_sg ?config case =
  let instance = Gen.instance_of_sg_case case in
  let fast = Sgselect.solve ?config instance case.Gen.query in
  let brute = (Baseline.sgq_brute instance case.Gen.query).Baseline.solution in
  match (fast, brute) with
  | None, None -> true
  | Some f, Some b ->
      close f.Query.total_distance b.Query.total_distance
      && Validate.is_valid_sg instance case.Gen.query f
  | Some _, None | None, Some _ -> false

let prop_sgselect_optimal = Gen.qtest ~count:300 "SGSelect = brute force" (Gen.sg_case ()) agree_sg

let ablation_config ~ordering ~distance ~acquaintance =
  {
    Search_core.default_config with
    Search_core.use_access_ordering = ordering;
    use_distance_pruning = distance;
    use_acquaintance_pruning = acquaintance;
  }

let prop_ablations_stay_optimal =
  let configs =
    [
      ablation_config ~ordering:false ~distance:true ~acquaintance:true;
      ablation_config ~ordering:true ~distance:false ~acquaintance:true;
      ablation_config ~ordering:true ~distance:true ~acquaintance:false;
      ablation_config ~ordering:false ~distance:false ~acquaintance:false;
    ]
  in
  Gen.qtest ~count:100 "SGSelect optimal under every safe ablation" (Gen.sg_case ())
    (fun case -> List.for_all (fun config -> agree_sg ~config case) configs)

let prop_unsafe_lemma3_never_better =
  let unsafe = { Search_core.default_config with Search_core.unsafe_lemma3 = true } in
  Gen.qtest ~count:150 "printed Lemma 3 never beats the optimum" (Gen.sg_case ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let opt = Sgselect.solve instance case.Gen.query in
      let u = Sgselect.solve ~config:unsafe instance case.Gen.query in
      match (opt, u) with
      | _, None -> true
      | None, Some _ -> false
      | Some o, Some x -> x.Query.total_distance >= o.Query.total_distance -. 1e-6)

let agree_stg case =
  let ti = Gen.temporal_instance_of_stg_case case in
  let query = Gen.stgq_of_stg_case case in
  let fast = Stgselect.solve ti query in
  let brute = (Baseline.stgq_brute ti query).Baseline.st_solution in
  match (fast, brute) with
  | None, None -> true
  | Some f, Some b ->
      close f.Query.st_total_distance b.Query.st_total_distance
      && Validate.is_valid_stg ti query f
  | Some _, None | None, Some _ -> false

let prop_stgselect_optimal =
  Gen.qtest ~count:150 "STGSelect = per-window brute force" (Gen.stg_case ()) agree_stg

(* Wide activity windows drive the pivot count down and make the
   interval scan straddle run boundaries — a regime the default
   generator (m <= 4) rarely reaches. *)
let prop_stgselect_optimal_wide_m =
  Gen.qtest ~count:80 "STGSelect = brute force at wide m"
    (Gen.stg_case ~max_n:7 ~max_m:8 ())
    agree_stg

let agree_stg_with config case =
  let ti = Gen.temporal_instance_of_stg_case case in
  let query = Gen.stgq_of_stg_case case in
  let fast = Stgselect.solve ~config ti query in
  let brute = (Baseline.stgq_brute ti query).Baseline.st_solution in
  match (fast, brute) with
  | None, None -> true
  | Some f, Some b -> close f.Query.st_total_distance b.Query.st_total_distance
  | Some _, None | None, Some _ -> false

let prop_stg_ablations_stay_optimal =
  let base = Search_core.default_config in
  let configs =
    [
      { base with Search_core.use_availability_pruning = false };
      { base with Search_core.use_access_ordering = false };
      { base with Search_core.use_distance_pruning = false };
      { base with Search_core.use_acquaintance_pruning = false };
      { base with Search_core.theta0 = 0; phi0 = 0 };
      { base with Search_core.theta0 = 5; phi0 = 5; phi_threshold = 12 };
      {
        base with
        Search_core.use_availability_pruning = false;
        use_access_ordering = false;
        use_distance_pruning = false;
        use_acquaintance_pruning = false;
      };
    ]
  in
  Gen.qtest ~count:60 "STGSelect optimal under every safe ablation"
    (Gen.stg_case ~max_n:7 ())
    (fun case -> List.for_all (fun config -> agree_stg_with config case) configs)

let prop_stgselect_vs_per_slot =
  Gen.qtest ~count:100 "STGSelect = per-slot SGSelect baseline" (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let query = Gen.stgq_of_stg_case case in
      let a = Stgselect.solve ti query in
      let b = (Baseline.stgq_per_slot ti query).Baseline.st_solution in
      match (a, b) with
      | None, None -> true
      | Some x, Some y -> close x.Query.st_total_distance y.Query.st_total_distance
      | _ -> false)

let prop_always_free_reduces_to_sgq =
  Gen.qtest ~count:100 "STGQ over always-free schedules = SGQ" (Gen.sg_case ~max_n:9 ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let horizon = 24 in
      let schedules =
        Array.init case.Gen.n (fun _ -> avail_of_runs horizon [ (0, horizon - 1) ])
      in
      let ti = { Query.social = instance; schedules } in
      let ({ p; s; k } : Query.sgq) = case.Gen.query in
      let sg = Sgselect.solve instance case.Gen.query in
      let stg = Stgselect.solve ti { p; s; k; m = 3 } in
      match (sg, stg) with
      | None, None -> true
      | Some a, Some b -> close a.Query.total_distance b.Query.st_total_distance
      | _ -> false)

let prop_warm_start_exact =
  Gen.qtest ~count:150 "warm-started solvers stay exact" (Gen.sg_case ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let cold = Sgselect.solve instance case.Gen.query in
      let warm = Sgselect.solve_warm instance case.Gen.query in
      match (cold, warm) with
      | None, None -> true
      | Some a, Some b -> close a.Query.total_distance b.Query.total_distance
      | _ -> false)

let prop_warm_start_stgq_exact =
  Gen.qtest ~count:80 "warm-started STGSelect stays exact" (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let query = Gen.stgq_of_stg_case case in
      let cold = Stgselect.solve ti query in
      let warm = Stgselect.solve_warm ti query in
      match (cold, warm) with
      | None, None -> true
      | Some a, Some b -> close a.Query.st_total_distance b.Query.st_total_distance
      | _ -> false)

let prop_k_monotone =
  Gen.qtest ~count:100 "looser k never worsens the optimum" (Gen.sg_case ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let ({ p; s; k } : Query.sgq) = case.Gen.query in
      let d q =
        Option.map (fun r -> r.Query.total_distance) (Sgselect.solve instance q)
      in
      match (d { Query.p; s; k }, d { Query.p; s; k = k + 1 }) with
      | Some tight, Some loose -> loose <= tight +. 1e-6
      | None, _ -> true
      | Some _, None -> false)

let prop_s_monotone =
  Gen.qtest ~count:100 "larger radius never worsens the optimum" (Gen.sg_case ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let ({ p; s; k } : Query.sgq) = case.Gen.query in
      let d q =
        Option.map (fun r -> r.Query.total_distance) (Sgselect.solve instance q)
      in
      match (d { Query.p; s; k }, d { Query.p; s = s + 1; k }) with
      | Some tight, Some loose -> loose <= tight +. 1e-6
      | None, _ -> true
      | Some _, None -> false)

let prop_p1_trivial =
  Gen.qtest ~count:50 "p=1 always succeeds with distance 0" (Gen.sg_case ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      match Sgselect.solve instance { Query.p = 1; s = 1; k = 0 } with
      | Some { attendees; total_distance } -> attendees = [ 0 ] && close total_distance 0.
      | None -> false)

let suite =
  [
    Alcotest.test_case "star p=3 k=2" `Quick test_star_k2;
    Alcotest.test_case "star p=3 k=0 infeasible" `Quick test_star_k0_infeasible;
    Alcotest.test_case "clique p=4 k=0" `Quick test_clique;
    Alcotest.test_case "two triangles pick the cheap one" `Quick test_two_triangles;
    Alcotest.test_case "printed Lemma 3 counterexample" `Quick
      test_lemma3_printed_bound_is_unsafe;
    Alcotest.test_case "radius constraint" `Quick test_radius;
    Alcotest.test_case "hop-bounded distances" `Quick test_hop_bounded_distance;
    Alcotest.test_case "STGQ disjoint schedules" `Quick test_stg_disjoint_schedules;
    Alcotest.test_case "STGQ off-pivot window" `Quick test_stg_example_shapes;
    Alcotest.test_case "vacuous k = nearest selection" `Quick
      test_vacuous_k_is_pure_distance_selection;
    Alcotest.test_case "isolated initiator" `Quick test_isolated_initiator;
    Alcotest.test_case "m=1 single shared slot" `Quick test_m_one_any_common_slot;
    Alcotest.test_case "m beyond horizon" `Quick test_window_longer_than_horizon;
    Alcotest.test_case "query validation" `Quick test_query_validation;
    prop_sgselect_optimal;
    prop_ablations_stay_optimal;
    prop_unsafe_lemma3_never_better;
    prop_stgselect_optimal;
    prop_stgselect_optimal_wide_m;
    prop_stg_ablations_stay_optimal;
    prop_stgselect_vs_per_slot;
    prop_always_free_reduces_to_sgq;
    prop_warm_start_exact;
    prop_warm_start_stgq_exact;
    prop_k_monotone;
    prop_s_monotone;
    prop_p1_trivial;
  ]

(* Wire-server integration: a real loopback socket in front of a real
   [Service], asserting the transport adds nothing and loses nothing —
   answers are bit-identical to direct calls on the regression corpus,
   budget descents (rung, gap, reason) survive the round-trip,
   concurrent clients are isolated, and the admission limit sheds with
   a typed [Overloaded] (pinned deterministically via the
   [on_admitted] hook, no sleeps). *)

open Stgq_core

let check = Alcotest.check

let loopback = Server.Tcp ("127.0.0.1", 0)

let with_server ?config service f =
  let server = Server.create ?config service in
  let handle = Server.start server loopback in
  Fun.protect
    ~finally:(fun () -> Server.stop handle)
    (fun () -> f (Server.bound_addr handle))

let with_client addr f =
  let c = Server.Client.connect addr in
  Fun.protect ~finally:(fun () -> Server.Client.close c) (fun () -> f c)

let request_exn c req =
  match Server.Client.request c req with
  | Ok resp -> resp
  | Error e -> Alcotest.fail (Proto.string_of_decode_error e)

(* Expected wire image of a direct resilient call. *)
let response_of_sg = function
  | Ok (a : Query.sg_solution Resilience.answer) ->
      Proto.Sg_answer
        {
          value = a.value;
          rung = a.rung;
          gap = a.gap;
          retries = a.retries;
          reason = a.reason;
          certified = true;
          trace_id = 0;
        }
  | Error (Resilience.Degraded { reason; retries }) ->
      Proto.Failed (Proto.Degraded { reason; retries })
  | Error (Resilience.Unavailable { error; retries }) ->
      Proto.Failed
        (Proto.Unavailable { message = Printexc.to_string error; retries })

let response_of_stg = function
  | Ok (a : Query.stg_solution Resilience.answer) ->
      Proto.Stg_answer
        {
          value = a.value;
          rung = a.rung;
          gap = a.gap;
          retries = a.retries;
          reason = a.reason;
          certified = true;
          trace_id = 0;
        }
  | Error (Resilience.Degraded { reason; retries }) ->
      Proto.Failed (Proto.Degraded { reason; retries })
  | Error (Resilience.Unavailable { error; retries }) ->
      Proto.Failed
        (Proto.Unavailable { message = Printexc.to_string error; retries })

let check_identical ~name expected actual =
  if not (Proto.equal_response expected actual) then
    Alcotest.failf "%s: wire answer diverged\n  direct: %a\n  wire:   %a" name
      Proto.pp_response expected Proto.pp_response actual

(* --- fixtures ------------------------------------------------------ *)

let small_ti =
  let n = 6 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v, 1. +. float_of_int ((u + v) mod 3)) :: !edges
    done
  done;
  let horizon = 10 in
  let schedules =
    Array.init n (fun _ ->
        let a = Timetable.Availability.create ~horizon in
        Timetable.Availability.set_free a 0 (horizon - 1);
        a)
  in
  {
    Query.social =
      { Query.graph = Socgraph.Graph.of_edges n !edges; initiator = 0 };
    schedules;
  }

(* dense enough that small node limits trip mid-search *)
let big_ti, big_q =
  let n = 22 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v, float_of_int (1 + ((u + (3 * v)) mod 19))) :: !edges
    done
  done;
  let horizon = 40 in
  let schedules =
    Array.init n (fun v ->
        let a = Timetable.Availability.create ~horizon in
        Timetable.Availability.set_free a (v mod 3) (horizon - 1 - (v mod 2));
        a)
  in
  ( {
      Query.social =
        { Query.graph = Socgraph.Graph.of_edges n !edges; initiator = 0 };
      schedules;
    },
    { Query.p = 10; s = 2; k = 5; m = 3 } )

(* --- handshake and echo ------------------------------------------- *)

let test_hello_ping () =
  with_server (Service.create small_ti) @@ fun addr ->
  with_client addr @@ fun c ->
  (match Server.Client.hello c ~client:"suite_server" with
  | Ok v -> check Alcotest.int "negotiated version" Proto.version v
  | Error msg -> Alcotest.fail msg);
  let payload = String.init 257 (fun i -> Char.chr (i mod 256)) in
  match request_exn c (Proto.Ping payload) with
  | Proto.Pong echoed -> check Alcotest.string "echo" payload echoed
  | resp -> Alcotest.failf "expected Pong, got %a" Proto.pp_response resp

(* --- corpus replay: wire == direct -------------------------------- *)

let cases_dir () =
  List.find_opt
    (fun d -> Sys.file_exists d && Sys.is_directory d)
    [ "cases"; "test/cases" ]

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let all_free_ti (sg : Gen.sg_case) =
  {
    Query.social = Gen.instance_of_sg_case sg;
    schedules =
      Array.init sg.Gen.n (fun _ ->
          let a = Timetable.Availability.create ~horizon:8 in
          Timetable.Availability.set_free a 0 7;
          a);
  }

let replay_case path () =
  let case = Gen.case_of_string (read_file path) in
  let ti, n =
    match case with
    | Gen.Sg sg -> (all_free_ti sg, sg.Gen.n)
    | Gen.Stg stg -> (Gen.temporal_instance_of_stg_case stg, stg.Gen.sg.Gen.n)
  in
  let service = Service.create ti in
  with_server service @@ fun addr ->
  with_client addr @@ fun c ->
  for initiator = 0 to min 2 (n - 1) do
    match case with
    | Gen.Sg sg ->
        let q = sg.Gen.query in
        let expected = response_of_sg (Service.sgq_r service ~initiator q) in
        let actual = request_exn c (Proto.Sgq { initiator; q; policy = None }) in
        check_identical ~name:(Printf.sprintf "sgq init=%d" initiator) expected
          actual
    | Gen.Stg stg ->
        let q = Gen.stgq_of_stg_case stg in
        let expected = response_of_stg (Service.stgq_r service ~initiator q) in
        let actual = request_exn c (Proto.Stgq { initiator; q; policy = None }) in
        check_identical ~name:(Printf.sprintf "stgq init=%d" initiator) expected
          actual;
        let qsg = Query.sgq_of_stgq q in
        let expected_sg = response_of_sg (Service.sgq_r service ~initiator qsg) in
        let actual_sg =
          request_exn c (Proto.Sgq { initiator; q = qsg; policy = None })
        in
        check_identical
          ~name:(Printf.sprintf "sgq-of-stgq init=%d" initiator)
          expected_sg actual_sg
  done

let corpus_tests =
  match cases_dir () with
  | None ->
      [
        Alcotest.test_case "corpus directory present" `Quick (fun () ->
            Alcotest.fail
              "test/cases/ not found — check the (source_tree cases) dep");
      ]
  | Some dir ->
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".case")
      |> List.sort compare
      |> List.map (fun f ->
             Alcotest.test_case ("wire replay " ^ f) `Quick
               (replay_case (Filename.concat dir f)))

(* --- budget descents survive the wire ------------------------------ *)

(* Node budgets are deterministic (no wall clock involved), so direct
   and wire answers must agree exactly on every rung — value, gap
   bound, descent reason included. *)
let test_budget_descent () =
  let service = Service.create big_ti in
  with_server service @@ fun addr ->
  with_client addr @@ fun c ->
  let descended = ref false in
  List.iter
    (fun node_limit ->
      let policy =
        { Resilience.default_policy with node_limit = Some node_limit }
      in
      let wire_policy =
        { Proto.deadline_ms = None; node_limit = Some node_limit; degrade = true }
      in
      let expected =
        response_of_stg (Service.stgq_r ~policy service ~initiator:0 big_q)
      in
      let actual =
        request_exn c
          (Proto.Stgq { initiator = 0; q = big_q; policy = Some wire_policy })
      in
      check_identical
        ~name:(Printf.sprintf "node_limit=%d" node_limit)
        expected actual;
      match actual with
      | Proto.Stg_answer { rung; reason = Some Budget.Node_limit; _ }
        when rung <> Resilience.Exact ->
          descended := true
      | _ -> ())
    [ 1; 25; 200; 100000 ];
  check Alcotest.bool "at least one limit forced a descent" true !descended

(* A zero deadline is already expired at the solver's entry checkpoint,
   before any expansion can seed an incumbent — so with the heuristic
   rung disabled the ladder lands on [Degraded] every time, on both
   the direct and the wire path. *)
let test_degraded_over_wire () =
  let service = Service.create big_ti in
  with_server service @@ fun addr ->
  with_client addr @@ fun c ->
  let policy =
    { Resilience.default_policy with deadline_ms = Some 0.0; degrade = false }
  in
  let wire_policy =
    { Proto.deadline_ms = Some 0.0; node_limit = None; degrade = false }
  in
  let expected =
    response_of_stg (Service.stgq_r ~policy service ~initiator:0 big_q)
  in
  (match expected with
  | Proto.Failed (Proto.Degraded { reason = Budget.Deadline; retries = 0 }) ->
      ()
  | resp ->
      Alcotest.failf "fixture should degrade directly, got %a" Proto.pp_response
        resp);
  let actual =
    request_exn c
      (Proto.Stgq { initiator = 0; q = big_q; policy = Some wire_policy })
  in
  check_identical ~name:"degraded" expected actual

(* --- validation ----------------------------------------------------- *)

let test_bad_requests () =
  let service = Service.create small_ti in
  with_server service @@ fun addr ->
  with_client addr @@ fun c ->
  let expect_bad name req =
    match request_exn c req with
    | Proto.Failed (Proto.Bad_request _) -> ()
    | resp ->
        Alcotest.failf "%s: expected Bad_request, got %a" name Proto.pp_response
          resp
  in
  expect_bad "initiator out of range"
    (Proto.Sgq
       { initiator = 99; q = { Query.p = 2; s = 1; k = 1 }; policy = None });
  expect_bad "negative initiator"
    (Proto.Stgq
       {
         initiator = -1 land 0xFFFFFF;
         q = { Query.p = 2; s = 1; k = 1; m = 2 };
         policy = None;
       });
  expect_bad "p = 0"
    (Proto.Sgq
       { initiator = 0; q = { Query.p = 0; s = 1; k = 1 }; policy = None });
  expect_bad "vertex out of range"
    (Proto.Update_schedule
       { vertex = 77; avail = Timetable.Availability.create ~horizon:10 });
  expect_bad "horizon mismatch"
    (Proto.Update_schedule
       { vertex = 1; avail = Timetable.Availability.create ~horizon:9 });
  (* the connection survives request-level rejections *)
  match request_exn c (Proto.Ping "still here") with
  | Proto.Pong "still here" -> ()
  | resp -> Alcotest.failf "expected Pong, got %a" Proto.pp_response resp

let test_update_schedule () =
  let ti = small_ti in
  let service = Service.create ti in
  let q = { Query.p = 3; s = 2; k = 2; m = 2 } in
  with_server service @@ fun addr ->
  with_client addr @@ fun c ->
  (* busy out everyone but the initiator, over the wire *)
  let busy = Timetable.Availability.create ~horizon:(Service.horizon service) in
  for v = 1 to Service.n_vertices service - 1 do
    match request_exn c (Proto.Update_schedule { vertex = v; avail = busy }) with
    | Proto.Updated { vertex } -> check Alcotest.int "updated vertex" v vertex
    | resp -> Alcotest.failf "expected Updated, got %a" Proto.pp_response resp
  done;
  let expected = response_of_stg (Service.stgq_r service ~initiator:0 q) in
  (match expected with
  | Proto.Stg_answer { value = None; rung = Resilience.Exact; _ } -> ()
  | resp ->
      Alcotest.failf "edit should make the query infeasible, got %a"
        Proto.pp_response resp);
  let actual = request_exn c (Proto.Stgq { initiator = 0; q; policy = None }) in
  check_identical ~name:"after wire calendar edit" expected actual

(* --- concurrent clients -------------------------------------------- *)

let test_concurrent_clients () =
  let service = Service.create small_ti in
  let queries =
    List.init 6 (fun i ->
        { Query.p = 2 + (i mod 3); s = 1 + (i mod 2); k = 1 + (i mod 2); m = 1 + (i mod 4) })
  in
  (* one-threaded ground truth first *)
  let expected =
    List.map
      (fun q ->
        ( response_of_stg (Service.stgq_r service ~initiator:0 q),
          response_of_sg
            (Service.sgq_r service ~initiator:1 (Query.sgq_of_stgq q)) ))
      queries
  in
  with_server service @@ fun addr ->
  let failures = Atomic.make 0 in
  let worker () =
    with_client addr @@ fun c ->
    List.iter2
      (fun q (exp_stg, exp_sg) ->
        let actual_stg =
          request_exn c (Proto.Stgq { initiator = 0; q; policy = None })
        in
        let actual_sg =
          request_exn c
            (Proto.Sgq
               { initiator = 1; q = Query.sgq_of_stgq q; policy = None })
        in
        if
          not
            (Proto.equal_response exp_stg actual_stg
            && Proto.equal_response exp_sg actual_sg)
        then ignore (Atomic.fetch_and_add failures 1 : int))
      queries expected
  in
  let threads = List.init 4 (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  check Alcotest.int "all concurrent answers bit-identical" 0
    (Atomic.get failures)

(* --- admission control --------------------------------------------- *)

(* Deterministic shed: the [on_admitted] hook pins request A in flight
   (holding the single admission slot) until the main thread has
   watched request B bounce off the limit. *)
let test_shedding () =
  let gate = Mutex.create () in
  let cond = Condition.create () in
  let admitted = ref false in
  let release = ref false in
  let on_admitted _req =
    Mutex.lock gate;
    admitted := true;
    Condition.broadcast cond;
    while not !release do
      Condition.wait cond gate
    done;
    Mutex.unlock gate
  in
  let config =
    {
      Server.default_config with
      admission_limit = 1;
      on_admitted = Some on_admitted;
    }
  in
  let service = Service.create small_ti in
  let q = { Query.p = 3; s = 2; k = 2; m = 2 } in
  with_server ~config service @@ fun addr ->
  let pinned_result = ref None in
  let pinned =
    Thread.create
      (fun () ->
        with_client addr @@ fun c ->
        pinned_result :=
          Some (Server.Client.request c (Proto.Stgq { initiator = 0; q; policy = None })))
      ()
  in
  Mutex.lock gate;
  while not !admitted do
    Condition.wait cond gate
  done;
  Mutex.unlock gate;
  (* slot is held: the next work request must shed, typed *)
  with_client addr (fun c ->
      match request_exn c (Proto.Sgq { initiator = 0; q = Query.sgq_of_stgq q; policy = None }) with
      | Proto.Failed (Proto.Overloaded { queue_depth; limit }) ->
          check Alcotest.int "limit" 1 limit;
          check Alcotest.bool "observed depth at least the limit" true
            (queue_depth >= 1)
      | resp ->
          Alcotest.failf "expected Overloaded, got %a" Proto.pp_response resp);
  (* control frames are never admission-gated *)
  with_client addr (fun c ->
      match request_exn c (Proto.Ping "control") with
      | Proto.Pong "control" -> ()
      | resp -> Alcotest.failf "expected Pong, got %a" Proto.pp_response resp);
  Mutex.lock gate;
  release := true;
  Condition.broadcast cond;
  Mutex.unlock gate;
  Thread.join pinned;
  match !pinned_result with
  | Some (Ok (Proto.Stg_answer { value = Some _; _ })) -> ()
  | Some (Ok resp) ->
      Alcotest.failf "pinned request should answer, got %a" Proto.pp_response
        resp
  | Some (Error e) -> Alcotest.fail (Proto.string_of_decode_error e)
  | None -> Alcotest.fail "pinned request never completed"

(* --- version negotiation on the raw socket -------------------------- *)

let raw_exchange addr frame =
  match addr with
  | Server.Tcp (host, port) ->
      let inet = Unix.inet_addr_of_string host in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          match Unix.close fd with
          | () -> ()
          | exception Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (inet, port));
          let len = String.length frame in
          let sent = Unix.write fd (Bytes.unsafe_of_string frame) 0 len in
          check Alcotest.int "frame sent whole" len sent;
          let buf = Bytes.create 4096 in
          let rec drain off =
            match Unix.read fd buf off (Bytes.length buf - off) with
            | 0 -> off
            | n -> drain (off + n)
          in
          let got = drain 0 in
          Bytes.sub_string buf 0 got)
  | Server.Unix_path _ -> Alcotest.fail "raw_exchange expects TCP"

let test_wrong_version_over_wire () =
  let service = Service.create small_ti in
  with_server service @@ fun addr ->
  let frame = Bytes.of_string (Proto.encode_request (Proto.Ping "v?")) in
  Bytes.set frame Proto.header_bytes (Char.chr (Proto.version + 7));
  (* the server answers Unsupported_version, then closes — so one read
     loop drains exactly one response frame *)
  let raw = raw_exchange addr (Bytes.to_string frame) in
  match Proto.decode_response raw with
  | Ok (Proto.Failed (Proto.Unsupported_version { server_version })) ->
      check Alcotest.int "server version" Proto.version server_version
  | Ok resp ->
      Alcotest.failf "expected Unsupported_version, got %a" Proto.pp_response
        resp
  | Error e -> Alcotest.fail (Proto.string_of_decode_error e)

(* A persistent raw connection speaking exact frames — unlike
   [raw_exchange] it does not wait for the server to hang up, so it can
   hold a whole session at a pinned wire version. *)
let raw_session addr f =
  match addr with
  | Server.Tcp (host, port) ->
      let inet = Unix.inet_addr_of_string host in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          match Unix.close fd with
          | () -> ()
          | exception Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (inet, port));
          let send frame =
            let len = String.length frame in
            let sent = Unix.write fd (Bytes.unsafe_of_string frame) 0 len in
            check Alcotest.int "frame sent whole" len sent
          in
          let read_exact n =
            let buf = Bytes.create n in
            let rec go off =
              if off >= n then Bytes.unsafe_to_string buf
              else
                match Unix.read fd buf off (n - off) with
                | 0 -> Alcotest.fail "server hung up mid-frame"
                | got -> go (off + got)
            in
            go 0
          in
          let recv () =
            match Proto.decode_frame_length (read_exact Proto.header_bytes) with
            | Ok len -> read_exact len
            | Error e -> Alcotest.fail (Proto.string_of_decode_error e)
          in
          f send recv)
  | Server.Unix_path _ -> Alcotest.fail "raw_session expects TCP"

(* An old client speaks v1 for the whole session: the server must reply
   at v1 (payload version byte) and its answers must decode cleanly —
   in particular without the v2 trace-id field. *)
let test_v1_client_session () =
  let service = Service.create small_ti in
  with_server service @@ fun addr ->
  raw_session addr @@ fun send recv ->
  send
    (Proto.encode_request ~version:Proto.min_version
       (Proto.Hello { client = "old-build"; speaks = 1 }));
  let payload = recv () in
  check Alcotest.int "reply framed at v1" Proto.min_version
    (Char.code payload.[0]);
  (match Proto.decode_response_payload payload with
  | Ok (Proto.Hello_ok { version }) ->
      check Alcotest.int "negotiated down to the client" Proto.min_version
        version
  | Ok resp -> Alcotest.failf "expected Hello_ok, got %a" Proto.pp_response resp
  | Error e -> Alcotest.fail (Proto.string_of_decode_error e));
  let q = { Query.p = 4; s = 2; k = 2; m = 3 } in
  send
    (Proto.encode_request ~version:Proto.min_version
       (Proto.Stgq { initiator = 0; q; policy = None }));
  let payload = recv () in
  check Alcotest.int "answer framed at v1" Proto.min_version
    (Char.code payload.[0]);
  (* byte-for-byte, the answer is what a v1 build would have produced:
     re-encoding the decoded answer at v1 reproduces the payload *)
  match Proto.decode_response_payload payload with
  | Ok (Proto.Stg_answer { value = Some _; trace_id; _ } as resp) ->
      check Alcotest.int "no trace id crosses a v1 wire" 0 trace_id;
      check Alcotest.string "payload identical to a v1 build's"
        (Proto.encode_response ~version:Proto.min_version resp)
        (let b = Buffer.create 64 in
         Buffer.add_string b
           (String.init Proto.header_bytes (fun i ->
                Char.chr
                  ((String.length payload lsr ((3 - i) * 8)) land 0xFF)));
         Buffer.add_string b payload;
         Buffer.contents b)
  | Ok resp ->
      Alcotest.failf "expected an answer, got %a" Proto.pp_response resp
  | Error e -> Alcotest.fail (Proto.string_of_decode_error e)

(* Hello negotiation picks min(server, client) clamped into range. *)
let test_hello_negotiation_bounds () =
  let service = Service.create small_ti in
  with_server service @@ fun addr ->
  let negotiate speaks =
    raw_session addr @@ fun send recv ->
    send (Proto.encode_request (Proto.Hello { client = "probe"; speaks }));
    match Proto.decode_response_payload (recv ()) with
    | Ok (Proto.Hello_ok { version }) -> version
    | Ok resp ->
        Alcotest.failf "expected Hello_ok, got %a" Proto.pp_response resp
    | Error e -> Alcotest.fail (Proto.string_of_decode_error e)
  in
  check Alcotest.int "matching build" Proto.version (negotiate Proto.version);
  check Alcotest.int "future client capped at ours" Proto.version (negotiate 9);
  check Alcotest.int "older client respected" Proto.min_version (negotiate 1);
  check Alcotest.int "nonsense 0 clamped up" Proto.min_version (negotiate 0)

(* With the flight recorder on, v2 answers carry a server-assigned
   trace id and the stitched tree is fetchable under it. *)
let test_answer_trace_id_fetchable () =
  Obs.set_enabled true;
  Obs.Trace.set_enabled true;
  Obs.Flightrec.set_enabled true;
  Obs.reset ();
  Obs.Trace.reset ();
  Obs.Flightrec.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Flightrec.set_enabled false;
      Obs.Flightrec.reset ();
      Obs.Trace.set_enabled false;
      Obs.Trace.reset ();
      Obs.set_enabled false)
  @@ fun () ->
  let service = Service.create small_ti in
  with_server service @@ fun addr ->
  with_client addr @@ fun c ->
  (match Server.Client.hello c ~client:"suite_server" with
  | Ok v -> check Alcotest.int "negotiated v2" Proto.version v
  | Error msg -> Alcotest.fail msg);
  let q = { Query.p = 4; s = 2; k = 2; m = 3 } in
  match request_exn c (Proto.Stgq { initiator = 0; q; policy = None }) with
  | Proto.Stg_answer { trace_id; _ } ->
      check Alcotest.bool "trace id assigned" true (trace_id > 0);
      (match Obs.Flightrec.find trace_id with
      | None -> Alcotest.fail "answer's trace id not retained"
      | Some roots ->
          let rec names t =
            t.Obs.Trace.t_span.Obs.Trace.sp_name
            :: List.concat_map names t.Obs.Trace.t_children
          in
          let all = List.concat_map names roots in
          check Alcotest.bool "server envelope stitched in" true
            (List.mem "server.request" all);
          check Alcotest.bool "service span stitched in" true
            (List.mem "service.stgq" all));
      (match
         Obs.Exposition.respond ~baseline:(Obs.snapshot ())
           (Printf.sprintf "/trace/%d" trace_id)
       with
      | 200, _, body ->
          check Alcotest.bool "/trace/:id serves it" true
            (let nh = String.length body in
             let needle = "server.request" in
             let nn = String.length needle in
             let rec at i =
               i + nn <= nh && (String.sub body i nn = needle || at (i + 1))
             in
             at 0)
      | s, _, _ -> Alcotest.failf "/trace/:id -> %d" s)
  | resp -> Alcotest.failf "expected an answer, got %a" Proto.pp_response resp

let test_oversized_frame_over_wire () =
  let service = Service.create small_ti in
  with_server service @@ fun addr ->
  let header =
    String.init 4 (fun i ->
        Char.chr (((Proto.max_frame + 1) lsr ((3 - i) * 8)) land 0xFF))
  in
  let raw = raw_exchange addr header in
  match Proto.decode_response raw with
  | Ok (Proto.Failed (Proto.Bad_request _)) -> ()
  | Ok resp ->
      Alcotest.failf "expected Bad_request, got %a" Proto.pp_response resp
  | Error e -> Alcotest.fail (Proto.string_of_decode_error e)

let suite =
  [
    Alcotest.test_case "hello and ping" `Quick test_hello_ping;
    Alcotest.test_case "budget descents survive the wire" `Quick
      test_budget_descent;
    Alcotest.test_case "degraded survives the wire" `Quick
      test_degraded_over_wire;
    Alcotest.test_case "bad requests are typed and non-fatal" `Quick
      test_bad_requests;
    Alcotest.test_case "calendar edit over the wire" `Quick test_update_schedule;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
    Alcotest.test_case "admission limit sheds typed Overloaded" `Quick
      test_shedding;
    Alcotest.test_case "wrong version over the wire" `Quick
      test_wrong_version_over_wire;
    Alcotest.test_case "v1 client session end to end" `Quick
      test_v1_client_session;
    Alcotest.test_case "hello negotiation bounds" `Quick
      test_hello_negotiation_bounds;
    Alcotest.test_case "v2 answers carry a fetchable trace id" `Quick
      test_answer_trace_id_fetchable;
    Alcotest.test_case "oversized frame over the wire" `Quick
      test_oversized_frame_over_wire;
  ]
  @ corpus_tests

(* The durable store: snapshot/WAL codecs under round-trip, fuzz and
   hostile-input tests; the crash-at-every-record recovery differential
   (recovered state == in-memory replay of the durable prefix, and a
   recovered service answers bit-identically to an uncrashed one); the
   cache-epoch / precise-invalidation contract; client connect retry;
   and the env-gated [Store_*] half of the fault matrix (the root
   [@faults] alias replays each I/O crash plan through this suite). *)

open Stgq_core

let check = Alcotest.check
module G = QCheck.Gen

(* --- fault plan gating (same shape as suite_faultmatrix) ----------- *)

let specs =
  match Sys.getenv_opt "STGQ_FAULTS" with
  | None | Some "" -> []
  | Some raw -> (
      match Faultinject.parse raw with
      | Ok specs -> specs
      | Error msg -> failwith ("unparsable STGQ_FAULTS plan: " ^ msg))

let spec_for site =
  List.find_opt (fun (s : Faultinject.spec) -> s.site = site) specs

let store_sites =
  [
    Faultinject.Store_short_write;
    Faultinject.Store_bit_flip;
    Faultinject.Store_crash_rename;
    Faultinject.Store_crash_append;
    Faultinject.Store_crash_checkpoint;
  ]

(* With a store plan armed, every store I/O call can fire: the ordinary
   tests would consume one-shot plans nondeterministically, so they
   stand down and only the site-specific tests run. *)
let store_plan_armed =
  List.exists
    (fun (s : Faultinject.spec) -> List.mem s.site store_sites)
    specs

let unless_armed f () = if store_plan_armed then () else f ()

(* --- scratch directories ------------------------------------------- *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d = Printf.sprintf "store-test-%d-%d" (Unix.getpid ()) !dir_counter in
  (match Unix.mkdir d 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rm_rf d =
  if Sys.file_exists d && Sys.is_directory d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Unix.rmdir d
  end

let with_dir f =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- fixtures ------------------------------------------------------ *)

let horizon = 12

let base_graph =
  Socgraph.Graph.of_edges 8
    [
      (0, 1, 1.); (1, 2, 1.); (2, 3, 2.); (0, 3, 1.5); (3, 4, 1.);
      (4, 5, 1.); (5, 6, 2.); (6, 7, 1.); (0, 2, 2.5); (2, 5, 1.2);
    ]

let mk_sched lo hi =
  let a = Timetable.Availability.create ~horizon in
  Timetable.Availability.set_free a lo hi;
  a

let base_state () =
  let schedules = Array.init 8 (fun v -> mk_sched 0 (11 - (v mod 3))) in
  Store.state_of_instance base_graph schedules

(* A representative mutation stream: every delta kind, including a
   re-weight, a removal of a just-added edge's neighbour and a flip
   that undoes an earlier flip. *)
let deltas () =
  [
    Store.Avail_flip { vertex = 2; slot = 3 };
    Store.Edge_add { u = 0; v = 7; w = 2.5 };
    Store.Schedule_set { vertex = 1; avail = mk_sched 2 9 };
    Store.Edge_remove { u = 1; v = 2 };
    Store.Avail_flip { vertex = 5; slot = 0 };
    Store.Edge_add { u = 2; v = 3; w = 0.5 };
    Store.Schedule_set { vertex = 6; avail = mk_sched 0 5 };
    Store.Edge_remove { u = 6; v = 7 };
    Store.Avail_flip { vertex = 2; slot = 3 };
    Store.Edge_add { u = 1; v = 4; w = 1.1 };
  ]

let apply_all st ds =
  List.fold_left
    (fun st d ->
      match Store.apply_delta st d with
      | Ok st' -> st'
      | Error e -> Alcotest.failf "apply_delta: %s" e)
    st ds

let expect_state name a b =
  check Alcotest.bool (name ^ ": states equal") true (Store.state_equal a b)

let open_exn ?checkpoint_bytes ~init d =
  match Store.open_dir ?checkpoint_bytes ~init d with
  | Ok pair -> pair
  | Error e -> Alcotest.failf "open_dir: %s" (Store.string_of_error e)

let no_init () = Alcotest.fail "init must not run: a snapshot exists"

(* --- snapshot codec ------------------------------------------------ *)

let test_snapshot_roundtrip () =
  let st = apply_all (base_state ()) (deltas ()) in
  let bytes = Store.encode_snapshot st in
  (match Store.decode_snapshot ~file:"mem" bytes with
  | Ok st' -> expect_state "decode(encode)" st st'
  | Error e -> Alcotest.fail (Store.string_of_error e));
  with_dir @@ fun d ->
  let p = Filename.concat d "snap.stgq" in
  let n = Store.save_snapshot p st in
  check Alcotest.int "save returns the image size" (String.length bytes) n;
  (match Store.load_snapshot p with
  | Ok st' -> expect_state "load(save)" st st'
  | Error e -> Alcotest.fail (Store.string_of_error e));
  match Store.verify_snapshot p with
  | Ok info ->
      check Alcotest.int "si_bytes" n info.Store.si_bytes;
      check Alcotest.int "si_n" 8 info.Store.si_n;
      check Alcotest.int "si_m"
        (Socgraph.Graph.n_edges st.Store.graph)
        info.Store.si_m;
      check Alcotest.int "si_horizon" horizon info.Store.si_horizon
  | Error e -> Alcotest.fail (Store.string_of_error e)

let test_snapshot_empty () =
  (* zero vertices, zero schedules: the degenerate image round-trips *)
  let st = Store.state_of_instance (Socgraph.Graph.of_edges 0 []) [||] in
  match Store.decode_snapshot ~file:"mem" (Store.encode_snapshot st) with
  | Ok st' -> expect_state "empty" st st'
  | Error e -> Alcotest.fail (Store.string_of_error e)

let test_apply_delta () =
  let st = base_state () in
  let frozen = Store.copy_state st in
  (* the functional contract: inputs are never mutated *)
  (match Store.apply_delta st (Store.Avail_flip { vertex = 0; slot = 1 }) with
  | Ok st' ->
      check Alcotest.bool "flip changed the copy" false
        (Store.state_equal st st')
  | Error e -> Alcotest.failf "flip: %s" e);
  expect_state "input untouched" frozen st;
  (* re-weight replaces the edge weight *)
  (match Store.apply_delta st (Store.Edge_add { u = 1; v = 0; w = 9. }) with
  | Ok st' ->
      check (Alcotest.option (Alcotest.float 0.))
        "re-weight wins" (Some 9.)
        (Socgraph.Graph.edge_weight st'.Store.graph 0 1)
  | Error e -> Alcotest.failf "re-weight: %s" e);
  (* removing an absent edge is a no-op, not an error *)
  (match Store.apply_delta st (Store.Edge_remove { u = 0; v = 6 }) with
  | Ok st' -> expect_state "remove absent" st st'
  | Error e -> Alcotest.failf "remove absent: %s" e);
  let expect_err name d =
    match Store.apply_delta st d with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: invalid delta accepted" name
  in
  expect_err "oob vertex" (Store.Edge_add { u = 0; v = 99; w = 1. });
  expect_err "self loop" (Store.Edge_add { u = 3; v = 3; w = 1. });
  expect_err "bad weight" (Store.Edge_add { u = 0; v = 4; w = -1. });
  expect_err "nan weight" (Store.Edge_add { u = 0; v = 4; w = Float.nan });
  expect_err "oob slot" (Store.Avail_flip { vertex = 0; slot = horizon });
  expect_err "oob flip vertex" (Store.Avail_flip { vertex = -1; slot = 0 });
  expect_err "horizon mismatch"
    (Store.Schedule_set
       { vertex = 0; avail = Timetable.Availability.create ~horizon:5 })

(* --- WAL codec + recovery ------------------------------------------ *)

let test_wal_roundtrip () =
  with_dir @@ fun d ->
  let ds = deltas () in
  let final = apply_all (base_state ()) ds in
  let t, r0 = open_exn ~init:base_state d in
  check Alcotest.int "fresh marker" (-1) r0.Store.r_snapshot_gen;
  check Alcotest.bool "fresh status" true
    (contains ~needle:"fresh" (Store.recovery_status r0));
  List.iter (Store.append t) ds;
  let wb = Store.wal_bytes t in
  check Alcotest.int "wal bytes = sum of records" wb
    (List.fold_left (fun a dl -> a + String.length (Store.encode_record dl)) 0 ds);
  Store.close t;
  (match Store.verify_wal (Store.wal_path ~dir:d ~gen:0) with
  | Ok n -> check Alcotest.int "verify counts records" (List.length ds) n
  | Error e -> Alcotest.fail (Store.string_of_error e));
  (match Store.replay_wal (Store.wal_path ~dir:d ~gen:0) with
  | Ok r ->
      check Alcotest.int "replay records" (List.length ds) r.Store.records;
      check Alcotest.int "replay valid bytes" wb r.Store.valid_bytes;
      check Alcotest.bool "no torn tail" true (r.Store.torn = None);
      expect_state "replayed deltas rebuild the state" final
        (apply_all (base_state ()) r.Store.deltas)
  | Error e -> Alcotest.fail (Store.string_of_error e));
  let t2, r2 = open_exn ~init:no_init d in
  Store.close t2;
  check Alcotest.int "recovered from gen 0" 0 r2.Store.r_snapshot_gen;
  check Alcotest.int "all records replayed" (List.length ds) r2.Store.r_replayed;
  expect_state "recovered state" final r2.Store.r_state

let test_checkpoint () =
  with_dir @@ fun d ->
  let t, _ = open_exn ~checkpoint_bytes:1 ~init:base_state d in
  let d1 = Store.Avail_flip { vertex = 0; slot = 2 } in
  let st1 = apply_all (base_state ()) [ d1 ] in
  Store.append t d1;
  check Alcotest.bool "threshold crossed" true (Store.should_checkpoint t);
  Store.checkpoint t st1;
  check Alcotest.int "wal truncated" 0 (Store.wal_bytes t);
  check Alcotest.bool "gen 1 published" true
    (Sys.file_exists (Store.snapshot_path ~dir:d ~gen:1));
  check Alcotest.bool "gen 0 kept as fallback" true
    (Sys.file_exists (Store.snapshot_path ~dir:d ~gen:0));
  check Alcotest.bool "log rotated to gen 1" true
    (Sys.file_exists (Store.wal_path ~dir:d ~gen:1));
  check Alcotest.bool "gen 0 log kept as fallback" true
    (Sys.file_exists (Store.wal_path ~dir:d ~gen:0));
  let d2 = Store.Avail_flip { vertex = 1; slot = 2 } in
  let st2 = apply_all st1 [ d2 ] in
  Store.append t d2;
  Store.checkpoint t st2;
  check Alcotest.bool "gen 2 published" true
    (Sys.file_exists (Store.snapshot_path ~dir:d ~gen:2));
  check Alcotest.bool "gen 0 pruned" false
    (Sys.file_exists (Store.snapshot_path ~dir:d ~gen:0));
  check Alcotest.bool "gen 0 log pruned" false
    (Sys.file_exists (Store.wal_path ~dir:d ~gen:0));
  Store.close t;
  let t3, r3 = open_exn ~init:no_init d in
  Store.close t3;
  check Alcotest.int "recovered from gen 2" 2 r3.Store.r_snapshot_gen;
  check Alcotest.int "nothing to replay" 0 r3.Store.r_replayed;
  expect_state "checkpointed state" st2 r3.Store.r_state

let test_torn_tail () =
  with_dir @@ fun d ->
  let ds = [ List.nth (deltas ()) 0; List.nth (deltas ()) 1 ] in
  let t, _ = open_exn ~init:base_state d in
  List.iter (Store.append t) ds;
  Store.close t;
  let wal = Store.wal_path ~dir:d ~gen:0 in
  let intact = read_file wal in
  (* a crashed append: half a header of garbage at the tail *)
  write_file wal (intact ^ "\222\173\190");
  (match Store.replay_wal wal with
  | Ok r ->
      check Alcotest.int "prefix records survive" 2 r.Store.records;
      check Alcotest.int "valid bytes = intact prefix" (String.length intact)
        r.Store.valid_bytes;
      check Alcotest.bool "tail reported torn" true (r.Store.torn <> None)
  | Error e -> Alcotest.fail (Store.string_of_error e));
  (match Store.verify_wal wal with
  | Error (Store.Corrupt c) ->
      check Alcotest.int "torn offset" (String.length intact) c.Store.offset
  | Ok _ -> Alcotest.fail "strict verify accepted a torn tail");
  (* recovery truncates the tail and the log is appendable again *)
  let t2, r2 = open_exn ~init:no_init d in
  check Alcotest.bool "recovery reports the torn tail" true
    (r2.Store.r_torn <> None);
  check Alcotest.int "durable prefix replayed" 2 r2.Store.r_replayed;
  expect_state "durable prefix state" (apply_all (base_state ()) ds)
    r2.Store.r_state;
  Store.append t2 (Store.Avail_flip { vertex = 7; slot = 1 });
  Store.close t2;
  (match Store.verify_wal wal with
  | Ok n -> check Alcotest.int "appends extend the durable prefix" 3 n
  | Error e -> Alcotest.fail (Store.string_of_error e));
  (* a bit flip mid-log: replay stops at the first bad CRC *)
  let flipped = Bytes.of_string (read_file wal) in
  let off = String.length (Store.encode_record (List.nth ds 0)) + 9 in
  Bytes.set flipped off (Char.chr (Char.code (Bytes.get flipped off) lxor 0x01));
  write_file wal (Bytes.to_string flipped);
  match Store.replay_wal wal with
  | Ok r ->
      check Alcotest.int "replay stops at the first bad CRC" 1 r.Store.records;
      check Alcotest.bool "flip reported" true (r.Store.torn <> None)
  | Error e -> Alcotest.fail (Store.string_of_error e)

(* The differential gate: crash the log at every byte offset around
   every record boundary; recovery must land exactly on the in-memory
   replay of the durable prefix. *)
let test_crash_at_every_record () =
  with_dir @@ fun d ->
  let ds = deltas () in
  let t, _ = open_exn ~init:base_state d in
  List.iter (Store.append t) ds;
  Store.close t;
  let wal_bytes = read_file (Store.wal_path ~dir:d ~gen:0) in
  let snap_bytes = read_file (Store.snapshot_path ~dir:d ~gen:0) in
  (* record boundaries, in prefix order: boundary j = bytes holding the
     first j records *)
  let boundaries =
    List.rev
      (List.fold_left
         (fun acc dl ->
           match acc with
           | prev :: _ -> (prev + String.length (Store.encode_record dl)) :: acc
           | [] -> assert false)
         [ 0 ] ds)
  in
  let expected_prefix j = apply_all (base_state ()) (List.filteri (fun i _ -> i < j) ds) in
  let try_cut ~cut ~records =
    with_dir @@ fun d2 ->
    write_file (Store.snapshot_path ~dir:d2 ~gen:0) snap_bytes;
    write_file (Store.wal_path ~dir:d2 ~gen:0) (String.sub wal_bytes 0 cut);
    let t2, r2 = open_exn ~init:no_init d2 in
    Store.close t2;
    check Alcotest.int
      (Printf.sprintf "cut %d: durable prefix is %d record(s)" cut records)
      records r2.Store.r_replayed;
    expect_state (Printf.sprintf "cut %d" cut) (expected_prefix records)
      r2.Store.r_state
  in
  List.iteri
    (fun j b ->
      (* exactly at the boundary: a clean crash between appends *)
      try_cut ~cut:b ~records:j;
      (* one byte into the next header, and one byte short of the next
         boundary: torn mid-append, the tail must be dropped *)
      if j < List.length ds then begin
        try_cut ~cut:(b + 1) ~records:j;
        let next = List.nth boundaries (j + 1) in
        try_cut ~cut:(next - 1) ~records:j
      end)
    boundaries

(* The checkpoint crash window: generation g+1 is renamed into place
   but the crash lands before the log rotates.  For every prefix of the
   mutation stream, recovery must load the new image and replay ZERO
   deltas — the superseded wal-g must never be applied on top of the
   image that already contains it (Avail_flip is non-idempotent, so a
   double apply would diverge).  Then the fallback chain: rot the new
   image and recovery must rebuild the same state from gen g plus the
   per-generation logs. *)
let test_checkpoint_crash_window () =
  let ds = deltas () in
  for j = 0 to List.length ds do
    with_dir @@ fun d ->
    let prefix = List.filteri (fun i _ -> i < j) ds in
    let acked = apply_all (base_state ()) prefix in
    let t, _ = open_exn ~init:base_state d in
    List.iter (Store.append t) prefix;
    (match
       Faultinject.with_plan "store_crash_checkpoint@1" (fun () ->
           Store.checkpoint t acked)
     with
    | () -> Alcotest.fail "checkpoint crash plan did not fire"
    | exception Faultinject.Injected_fault _ -> ());
    Store.close t;
    (* the window on disk: snapshot-1 published, wal-0 intact, no wal-1 *)
    check Alcotest.bool
      (Printf.sprintf "prefix %d: new image published" j)
      true
      (Sys.file_exists (Store.snapshot_path ~dir:d ~gen:1));
    check Alcotest.bool
      (Printf.sprintf "prefix %d: log not yet rotated" j)
      false
      (Sys.file_exists (Store.wal_path ~dir:d ~gen:1));
    let t2, r2 = open_exn ~init:no_init d in
    check Alcotest.int
      (Printf.sprintf "prefix %d: loaded the published generation" j)
      1 r2.Store.r_snapshot_gen;
    check Alcotest.int
      (Printf.sprintf "prefix %d: zero deltas replayed (no double apply)" j)
      0 r2.Store.r_replayed;
    expect_state
      (Printf.sprintf "prefix %d: recovered == acked" j)
      acked r2.Store.r_state;
    (* appends land in the rotated-forward log and recover on top *)
    let extra = Store.Avail_flip { vertex = 7; slot = 4 } in
    Store.append t2 extra;
    Store.close t2;
    let t3, r3 = open_exn ~init:no_init d in
    Store.close t3;
    check Alcotest.int
      (Printf.sprintf "prefix %d: post-crash append replays" j)
      1 r3.Store.r_replayed;
    expect_state
      (Printf.sprintf "prefix %d: acked + extra" j)
      (apply_all acked [ extra ])
      r3.Store.r_state;
    (* rot the new image: recovery falls back to gen 0 and rebuilds the
       same state from the per-generation log chain wal-0 ++ wal-1 *)
    write_file (Store.snapshot_path ~dir:d ~gen:1) "rot";
    let t4, r4 = open_exn ~init:no_init d in
    Store.close t4;
    check Alcotest.int
      (Printf.sprintf "prefix %d: fell back to gen 0" j)
      0 r4.Store.r_snapshot_gen;
    check Alcotest.int
      (Printf.sprintf "prefix %d: rotten image counted" j)
      1 r4.Store.r_snapshots_skipped;
    check Alcotest.int
      (Printf.sprintf "prefix %d: chain replays both logs" j)
      (j + 1) r4.Store.r_replayed;
    expect_state
      (Printf.sprintf "prefix %d: chain rebuilds acked + extra" j)
      (apply_all acked [ extra ])
      r4.Store.r_state
  done

(* Recovered state must serve bit-identical answers: solve the same
   query on an uncrashed service and on one rebuilt from recovery. *)
let test_recovered_answers () =
  with_dir @@ fun d ->
  let ds = deltas () in
  let final = apply_all (base_state ()) ds in
  let t, _ = open_exn ~init:base_state d in
  List.iter (Store.append t) ds;
  Store.close t;
  let t2, r2 = open_exn ~init:no_init d in
  Store.close t2;
  let service_of (st : Store.state) =
    Service.create
      {
        Query.social = { Query.graph = st.Store.graph; initiator = 0 };
        schedules = st.Store.schedules;
      }
  in
  let live = service_of final in
  let recovered = service_of r2.Store.r_state in
  let q = { Query.p = 3; s = 2; k = 2; m = 2 } in
  let q_sg = { Query.p = 3; s = 2; k = 2 } in
  List.iter
    (fun initiator ->
      let a = Service.stgq live ~initiator q in
      let b = Service.stgq recovered ~initiator q in
      check Alcotest.bool
        (Printf.sprintf "stgq answers identical (initiator %d)" initiator)
        true (a = b);
      let a = Service.sgq live ~initiator q_sg in
      let b = Service.sgq recovered ~initiator q_sg in
      check Alcotest.bool
        (Printf.sprintf "sgq answers identical (initiator %d)" initiator)
        true (a = b))
    [ 0; 3; 5 ]

(* --- decoder hardening --------------------------------------------- *)

let test_snapshot_truncation () =
  let bytes = Store.encode_snapshot (apply_all (base_state ()) (deltas ())) in
  for cut = 0 to String.length bytes - 1 do
    match Store.decode_snapshot ~file:"mem" (String.sub bytes 0 cut) with
    | Error (Store.Corrupt _) -> ()
    | Ok _ -> Alcotest.failf "strict prefix of %d byte(s) decoded" cut
  done

let test_wal_truncation () =
  with_dir @@ fun d ->
  let ds = deltas () in
  let t, _ = open_exn ~init:base_state d in
  List.iter (Store.append t) ds;
  Store.close t;
  let wal = read_file (Store.wal_path ~dir:d ~gen:0) in
  let boundaries =
    List.fold_left
      (fun acc dl ->
        match acc with
        | prev :: _ -> (prev + String.length (Store.encode_record dl)) :: acc
        | [] -> assert false)
      [ 0 ] ds
  in
  let probe = Filename.concat d "probe.wal" in
  for cut = 0 to String.length wal - 1 do
    write_file probe (String.sub wal 0 cut);
    match Store.verify_wal probe with
    | Ok _ when List.mem cut boundaries -> ()
    | Ok n ->
        Alcotest.failf "strict verify accepted a mid-record cut at %d (%d recs)"
          cut n
    | Error (Store.Corrupt _) when not (List.mem cut boundaries) -> ()
    | Error (Store.Corrupt c) ->
        Alcotest.failf "boundary cut at %d rejected: %s" cut c.Store.detail
  done

let snapshot_fuzz_bytes =
  lazy (Store.encode_snapshot (apply_all (base_state ()) (deltas ())))

let prop_snapshot_mutation =
  Gen.qtest ~count:300 "snapshot byte mutations never raise"
    (QCheck.make
       ~print:(fun (pos, byte) -> Printf.sprintf "byte %d := %d" pos byte)
       (fun st ->
         let bytes = Lazy.force snapshot_fuzz_bytes in
         (G.int_bound (String.length bytes - 1) st, G.int_bound 255 st)))
    (fun (pos, byte) ->
      let mutated = Bytes.of_string (Lazy.force snapshot_fuzz_bytes) in
      Bytes.set mutated pos (Char.chr byte);
      match Store.decode_snapshot ~file:"mem" (Bytes.to_string mutated) with
      | Ok _ | Error (Store.Corrupt _) -> true)

let prop_garbage_snapshot =
  Gen.qtest ~count:300 "random bytes never decode as a snapshot image"
    (QCheck.make ~print:(Printf.sprintf "%S") G.(string_size (int_bound 64)))
    (fun s ->
      match Store.decode_snapshot ~file:"mem" s with
      | Error (Store.Corrupt _) -> true
      | Ok st -> Store.state_equal st st (* unreachable for garbage < magic *))

let w32_be b v =
  for i = 3 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (i * 8)) land 0xFF))
  done

let section b tag payload =
  Buffer.add_char b (Char.chr tag);
  w32_be b (String.length payload);
  w32_be b (Store.crc32 payload);
  Buffer.add_string b payload

(* Hostile declared lengths must be rejected against the bytes present
   before anything is allocated from them. *)
let test_hostile_lengths () =
  (* a graph section declaring ~4 GiB of payload *)
  let b = Buffer.create 32 in
  Buffer.add_string b "STGQSNAP\001";
  Buffer.add_char b '\001';
  w32_be b 0xFFFFFF00;
  w32_be b 0;
  (match Store.decode_snapshot ~file:"mem" (Buffer.contents b) with
  | Error (Store.Corrupt c) ->
      check Alcotest.bool "offset recorded" true (c.Store.offset > 0)
  | Ok _ -> Alcotest.fail "hostile section length decoded");
  (* a graph section declaring ~4e9 vertices under a valid CRC with
     zero edges: ~30 bytes on disk must not size O(n) vertex columns *)
  let hostile_n = Buffer.create 16 in
  w32_be hostile_n 0xFFFFFF00;
  w32_be hostile_n 0;
  let img_n = Buffer.create 64 in
  Buffer.add_string img_n "STGQSNAP\001";
  section img_n 1 (Buffer.contents hostile_n);
  (match Store.decode_snapshot ~file:"mem" (Buffer.contents img_n) with
  | Error (Store.Corrupt c) ->
      check Alcotest.bool "vertex cap named" true
        (contains ~needle:"cap" c.Store.detail)
  | Ok _ -> Alcotest.fail "hostile vertex count decoded");
  (* just over the cap is rejected, the cap itself is about bounding
     allocation, not the encodable range below it *)
  let over = Buffer.create 16 in
  w32_be over (Store.max_vertices + 1);
  w32_be over 0;
  let img_over = Buffer.create 64 in
  Buffer.add_string img_over "STGQSNAP\001";
  section img_over 1 (Buffer.contents over);
  (match Store.decode_snapshot ~file:"mem" (Buffer.contents img_over) with
  | Error (Store.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "vertex count over the cap decoded");
  (* a timetable section declaring a ~4e9-slot horizon under a valid
     CRC: the mask bytes are not present, so no bitset may be built *)
  let g = Buffer.create 16 in
  w32_be g 2;
  w32_be g 0;
  let tt = Buffer.create 16 in
  w32_be tt 2;
  w32_be tt 0xFFFFFF00;
  let img = Buffer.create 64 in
  Buffer.add_string img "STGQSNAP\001";
  section img 1 (Buffer.contents g);
  section img 2 (Buffer.contents tt);
  (match Store.decode_snapshot ~file:"mem" (Buffer.contents img) with
  | Error (Store.Corrupt c) ->
      check Alcotest.bool "truncation detail" true
        (contains ~needle:"truncated" c.Store.detail)
  | Ok _ -> Alcotest.fail "hostile horizon decoded");
  (* a WAL record declaring more than the 1 MiB cap is a torn tail for
     replay and corruption for strict verify *)
  with_dir @@ fun d ->
  let wal = Filename.concat d "wal.stgq" in
  let b = Buffer.create 16 in
  w32_be b ((1 lsl 20) + 1);
  w32_be b 0;
  write_file wal (Buffer.contents b);
  (match Store.replay_wal wal with
  | Ok r ->
      check Alcotest.int "no records" 0 r.Store.records;
      check Alcotest.bool "cap reported" true
        (match r.Store.torn with
        | Some c -> contains ~needle:"cap" c.Store.detail
        | None -> false)
  | Error e -> Alcotest.fail (Store.string_of_error e));
  match Store.verify_wal wal with
  | Error (Store.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "strict verify accepted an over-cap record"

(* Only ENOENT means "empty log": any other failure reading the log
   must surface as a typed error, never as an empty log — misreading an
   existing log as empty would position appends at offset 0 and
   overwrite durable records. *)
let test_wal_missing_vs_unreadable () =
  (match Store.replay_wal "store-test-definitely-absent.stgq" with
  | Ok r ->
      check Alcotest.int "absent file is an empty log" 0 r.Store.records;
      check Alcotest.bool "no torn tail" true (r.Store.torn = None)
  | Error e -> Alcotest.fail (Store.string_of_error e));
  (* a directory in the log's place opens but fails to read (EISDIR) *)
  with_dir @@ fun d ->
  (match Store.replay_wal d with
  | Error (Store.Corrupt c) ->
      check Alcotest.bool "read failure reported" true
        (contains ~needle:"cannot" c.Store.detail)
  | Ok _ -> Alcotest.fail "unreadable log read as an empty log");
  match Store.verify_wal d with
  | Error (Store.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "strict verify read an unreadable log as empty"

let test_recovery_refuses () =
  (* a directory whose only snapshot is rot: refuse, do not clobber *)
  (with_dir @@ fun d ->
   write_file (Store.snapshot_path ~dir:d ~gen:0) "garbage";
   match Store.open_dir ~init:no_init d with
   | Error (Store.Corrupt _) -> ()
   | Ok _ -> Alcotest.fail "opened a store with no valid snapshot");
  (* a delta log with no snapshot generation at all: the images were
     lost, so refuse to initialise over the stale log — and write
     nothing into the directory while refusing *)
  (with_dir @@ fun d ->
   write_file
     (Store.wal_path ~dir:d ~gen:0)
     (Store.encode_record (Store.Avail_flip { vertex = 0; slot = 1 }));
   (match Store.open_dir ~init:no_init d with
   | Error (Store.Corrupt c) ->
       check Alcotest.bool "stale log named" true
         (contains ~needle:"no snapshot" c.Store.detail)
   | Ok _ -> Alcotest.fail "initialised over a stale delta log");
   check Alcotest.bool "no generation written while refusing" false
     (Sys.file_exists (Store.snapshot_path ~dir:d ~gen:0)));
  (* a broken log chain: the loaded generation's log is missing while a
     newer generation's log survives — state cannot be reconstructed *)
  (with_dir @@ fun d ->
   let t, _ = open_exn ~init:base_state d in
   Store.append t (Store.Avail_flip { vertex = 0; slot = 1 });
   Store.checkpoint t (apply_all (base_state ())
                         [ Store.Avail_flip { vertex = 0; slot = 1 } ]);
   Store.close t;
   (* snapshots 0+1, logs 0+1 exist; lose snapshot 1 and log 0 *)
   Sys.remove (Store.snapshot_path ~dir:d ~gen:1);
   Sys.remove (Store.wal_path ~dir:d ~gen:0);
   match Store.open_dir ~init:no_init d with
   | Error (Store.Corrupt c) ->
       check Alcotest.bool "chain break named" true
         (contains ~needle:"chain" c.Store.detail)
   | Ok _ -> Alcotest.fail "opened across a broken log chain");
  (* a WAL record with a valid CRC but invalid semantics: the writer
     never produced it, so recovery refuses with its offset *)
  with_dir @@ fun d ->
  let t, _ = open_exn ~init:base_state d in
  Store.close t;
  write_file
    (Store.wal_path ~dir:d ~gen:0)
    (Store.encode_record (Store.Edge_add { u = 0; v = 7777; w = 1. }));
  match Store.open_dir ~init:no_init d with
  | Error (Store.Corrupt c) ->
      check Alcotest.int "offset of the bad record" 0 c.Store.offset;
      check Alcotest.bool "detail names the range violation" true
        (contains ~needle:"out of range" c.Store.detail)
  | Ok _ -> Alcotest.fail "replayed a semantically invalid record"

(* --- engine epoch + precise invalidation --------------------------- *)

let test_cache_epoch_and_touched () =
  let path = Socgraph.Graph.of_edges 5 [ (0, 1, 1.); (1, 2, 1.); (2, 3, 1.); (3, 4, 1.) ] in
  let cache = Engine.Cache.create path in
  check Alcotest.int "epoch starts at 0" 0 (Engine.Cache.epoch cache);
  ignore (Engine.Cache.context cache ~initiator:0 ~s:1 : Engine.Context.t);
  check Alcotest.int "one cached context" 1
    (Engine.Cache.stats cache).Engine.Cache.entries;
  (* a delta on edge {3,4}: neither endpoint is within s=1 of initiator
     0, so the cached context must survive *)
  let g2 = Socgraph.Graph.of_edges 5 [ (0, 1, 1.); (1, 2, 1.); (2, 3, 1.); (3, 4, 2.) ] in
  Engine.Cache.set_graph ~touched:[ 3; 4 ] cache g2;
  check Alcotest.int "untouched context survives" 1
    (Engine.Cache.stats cache).Engine.Cache.entries;
  check Alcotest.int "epoch bumped" 1 (Engine.Cache.epoch cache);
  (* a delta touching vertex 1 — feasible for (0, s=1) — must drop it *)
  let g3 = Socgraph.Graph.of_edges 5 [ (0, 1, 3.); (1, 2, 1.); (2, 3, 1.); (3, 4, 2.) ] in
  Engine.Cache.set_graph ~touched:[ 0; 1 ] cache g3;
  check Alcotest.int "touched context dropped" 0
    (Engine.Cache.stats cache).Engine.Cache.entries;
  check Alcotest.int "epoch bumped again" 2 (Engine.Cache.epoch cache);
  (* calendar edits bump the epoch too *)
  let schedules = Array.init 5 (fun _ -> mk_sched 0 5) in
  let cache2 = Engine.Cache.create ~schedules path in
  Engine.Cache.set_schedule cache2 ~vertex:2 (mk_sched 1 3);
  check Alcotest.int "schedule edit bumps epoch" 1 (Engine.Cache.epoch cache2)

(* --- client retry + healthz ---------------------------------------- *)

let fast_policy =
  { Resilience.default_policy with backoff_ms = 0.01; max_retries = 2 }

let base_ti () =
  let st = base_state () in
  {
    Query.social = { Query.graph = st.Store.graph; initiator = 0 };
    schedules = st.Store.schedules;
  }

let test_connect_retry () =
  (* unreachable endpoint: typed error after the retry allowance *)
  (match
     Server.Client.connect_retry ~policy:fast_policy
       (Server.Unix_path "store-test-no-such-dir/sock")
   with
  | Error msg ->
      check Alcotest.bool "error counts attempts" true
        (contains ~needle:"3 attempt(s)" msg)
  | Ok _ -> Alcotest.fail "connected to nothing");
  (* live endpoint: first attempt wins *)
  let service = Service.create (base_ti ()) in
  Suite_server.with_server service @@ fun addr ->
  match Server.Client.connect_retry ~policy:fast_policy addr with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () ->
          match Server.Client.hello c ~client:"suite-store" with
          | Ok _ -> ()
          | Error msg -> Alcotest.fail msg)

let test_healthz_recovery_field () =
  with_dir @@ fun d ->
  let t, recovery = open_exn ~init:base_state d in
  Store.close t;
  let baseline = Obs.snapshot () in
  let status () = "store: " ^ Store.recovery_status recovery in
  let code, _, body = Obs.Exposition.respond ~health:status ~baseline "/healthz" in
  check Alcotest.int "healthz is 200" 200 code;
  check Alcotest.bool "liveness line first" true
    (String.length body >= 3 && String.sub body 0 3 = "ok\n");
  check Alcotest.bool "recovery status reported" true
    (contains ~needle:"fresh store" body);
  (* without the hook the body is unchanged *)
  let _, _, plain = Obs.Exposition.respond ~baseline "/healthz" in
  check Alcotest.string "default body" "ok\n" plain

(* --- the wire: journal before ack ---------------------------------- *)

let test_wire_durability () =
  with_dir @@ fun d ->
  let service = Service.create (base_ti ()) in
  let init () =
    Store.state_of_instance (Service.graph service) (Service.schedules service)
  in
  let t, _ = open_exn ~init d in
  let config = { Server.default_config with store = Some t } in
  let edit = mk_sched 1 4 in
  (Suite_server.with_server ~config service @@ fun addr ->
   Suite_server.with_client addr @@ fun c ->
   (match
      Suite_server.request_exn c
        (Proto.Update_schedule { vertex = 3; avail = edit })
    with
   | Proto.Updated { vertex } -> check Alcotest.int "acked vertex" 3 vertex
   | resp -> Alcotest.failf "expected Updated, got %a" Proto.pp_response resp);
   (* an invalid edit is rejected before it can pollute the log *)
   match
     Suite_server.request_exn c
       (Proto.Update_schedule { vertex = 999; avail = edit })
   with
   | Proto.Failed (Proto.Bad_request _) -> ()
   | resp -> Alcotest.failf "expected Bad_request, got %a" Proto.pp_response resp);
  Store.close t;
  (* the acked edit survives: reopen and find it in the recovered state *)
  let t2, r2 = open_exn ~init:no_init d in
  Store.close t2;
  check Alcotest.int "one journalled record" 1 r2.Store.r_replayed;
  check Alcotest.bool "recovered calendar carries the edit" true
    (Bitset.equal
       (Timetable.Availability.bits r2.Store.r_state.Store.schedules.(3))
       (Timetable.Availability.bits edit));
  (* the recovered state is exactly what the live service holds... *)
  expect_state "recovered == live in-memory state" (init ()) r2.Store.r_state;
  (* ...and reverting the one acked edit lands back on the initial state *)
  expect_state "only vertex 3 changed" (base_state ())
    (apply_all r2.Store.r_state
       [ Store.Schedule_set { vertex = 3; avail = (base_state ()).Store.schedules.(3) } ])

let test_store_metrics () =
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  let appends = Obs.counter "store.wal.appends" in
  let replays = Obs.counter "store.replay.records" in
  let before_appends = Obs.Counter.value appends in
  let before_replays = Obs.Counter.value replays in
  with_dir @@ fun d ->
  let t, _ = open_exn ~init:base_state d in
  List.iter (Store.append t) (deltas ());
  Store.close t;
  check Alcotest.int "appends counted"
    (before_appends + List.length (deltas ()))
    (Obs.Counter.value appends);
  let t2, _ = open_exn ~init:no_init d in
  Store.close t2;
  check Alcotest.int "replayed records counted"
    (before_replays + List.length (deltas ()))
    (Obs.Counter.value replays)

(* --- the Store_* fault matrix (env-gated) -------------------------- *)

let test_fault_short_write () =
  match spec_for Faultinject.Store_short_write with
  | None -> ()
  | Some spec ->
      with_dir @@ fun d ->
      let p = Filename.concat d "snap.stgq" in
      let st = base_state () in
      (match Store.save_snapshot p st with
      | _ -> Alcotest.fail "short-write plan did not fire"
      | exception Faultinject.Injected_fault _ -> ());
      check Alcotest.bool "site fired" true
        (Faultinject.hits Faultinject.Store_short_write > 0);
      (* the crash happened before the rename: no image is visible *)
      check Alcotest.bool "no image published" false (Sys.file_exists p);
      (* the half-written temp file never verifies *)
      (match Store.load_snapshot (p ^ ".tmp") with
      | Error (Store.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "half-written temp file decoded");
      if not spec.persistent then begin
        let n = Store.save_snapshot p st in
        check Alcotest.bool "retry publishes" true (n > 0);
        match Store.load_snapshot p with
        | Ok st' -> expect_state "published image" st st'
        | Error e -> Alcotest.fail (Store.string_of_error e)
      end

let test_fault_crash_rename () =
  match spec_for Faultinject.Store_crash_rename with
  | None -> ()
  | Some spec ->
      with_dir @@ fun d ->
      let p = Filename.concat d "snap.stgq" in
      let st = base_state () in
      (match Store.save_snapshot p st with
      | _ -> Alcotest.fail "crash-rename plan did not fire"
      | exception Faultinject.Injected_fault _ -> ());
      check Alcotest.bool "site fired" true
        (Faultinject.hits Faultinject.Store_crash_rename > 0);
      (* crash after fsync, before rename: temp complete, image absent *)
      check Alcotest.bool "no image published" false (Sys.file_exists p);
      (match Store.load_snapshot (p ^ ".tmp") with
      | Ok st' -> expect_state "temp file was fully written" st st'
      | Error e -> Alcotest.fail (Store.string_of_error e));
      if not spec.persistent then begin
        ignore (Store.save_snapshot p st : int);
        match Store.load_snapshot p with
        | Ok st' -> expect_state "retry publishes" st st'
        | Error e -> Alcotest.fail (Store.string_of_error e)
      end

let test_fault_bit_flip () =
  match spec_for Faultinject.Store_bit_flip with
  | None -> ()
  | Some spec ->
      with_dir @@ fun d ->
      let stA = base_state () in
      let stB = apply_all (base_state ()) [ List.nth (deltas ()) 0 ] in
      (* newest generation takes the silent flip *)
      ignore (Store.save_snapshot (Store.snapshot_path ~dir:d ~gen:1) stA : int);
      check Alcotest.bool "site fired" true
        (Faultinject.hits Faultinject.Store_bit_flip > 0);
      (match Store.load_snapshot (Store.snapshot_path ~dir:d ~gen:1) with
      | Error (Store.Corrupt _) -> ()
      | Ok _ -> Alcotest.fail "flipped image passed its CRC");
      if spec.persistent then begin
        (* every image rots: recovery must refuse, not fabricate *)
        ignore (Store.save_snapshot (Store.snapshot_path ~dir:d ~gen:0) stB : int);
        match Store.open_dir ~init:no_init d with
        | Error (Store.Corrupt _) -> ()
        | Ok _ -> Alcotest.fail "opened on all-corrupt generations"
      end
      else begin
        (* older generation is intact: recovery falls back to it *)
        ignore (Store.save_snapshot (Store.snapshot_path ~dir:d ~gen:0) stB : int);
        let t, r = open_exn ~init:no_init d in
        Store.close t;
        check Alcotest.int "fell back to gen 0" 0 r.Store.r_snapshot_gen;
        check Alcotest.int "rotten generation counted" 1
          r.Store.r_snapshots_skipped;
        expect_state "fallback state" stB r.Store.r_state
      end

let test_fault_crash_append () =
  match spec_for Faultinject.Store_crash_append with
  | None -> ()
  | Some spec ->
      with_dir @@ fun d ->
      let t, _ = open_exn ~init:base_state d in
      let d1 = List.nth (deltas ()) 0 in
      (match Store.append t d1 with
      | () -> Alcotest.fail "crash-append plan did not fire"
      | exception Faultinject.Injected_fault _ -> ());
      check Alcotest.bool "site fired" true
        (Faultinject.hits Faultinject.Store_crash_append > 0);
      Store.close t;
      (* recovery: the torn record is dropped, state is the pre-crash
         durable prefix (nothing was acked, nothing is replayed) *)
      let t2, r2 = open_exn ~init:no_init d in
      check Alcotest.int "torn record not replayed" 0 r2.Store.r_replayed;
      check Alcotest.bool "torn tail reported" true (r2.Store.r_torn <> None);
      expect_state "durable prefix = snapshot" (base_state ()) r2.Store.r_state;
      if not spec.persistent then begin
        Store.append t2 d1;
        Store.close t2;
        let t3, r3 = open_exn ~init:no_init d in
        Store.close t3;
        check Alcotest.int "retried append replays" 1 r3.Store.r_replayed;
        expect_state "retried append recovered"
          (apply_all (base_state ()) [ d1 ])
          r3.Store.r_state
      end
      else Store.close t2

let test_fault_crash_checkpoint () =
  match spec_for Faultinject.Store_crash_checkpoint with
  | None -> ()
  | Some spec ->
      with_dir @@ fun d ->
      let t, _ = open_exn ~init:base_state d in
      let d1 = List.nth (deltas ()) 0 in
      Store.append t d1;
      let acked = apply_all (base_state ()) [ d1 ] in
      (match Store.checkpoint t acked with
      | () -> Alcotest.fail "crash-checkpoint plan did not fire"
      | exception Faultinject.Injected_fault _ -> ());
      check Alcotest.bool "site fired" true
        (Faultinject.hits Faultinject.Store_crash_checkpoint > 0);
      Store.close t;
      (* the published image is the durable truth; the superseded log
         must not be replayed on top of it *)
      let t2, r2 = open_exn ~init:no_init d in
      check Alcotest.int "loaded the published generation" 1
        r2.Store.r_snapshot_gen;
      check Alcotest.int "no double apply" 0 r2.Store.r_replayed;
      expect_state "recovered == acked" acked r2.Store.r_state;
      if not spec.persistent then begin
        (* the next checkpoint completes a full rotation *)
        let d2 = List.nth (deltas ()) 4 in
        Store.append t2 d2;
        let acked2 = apply_all acked [ d2 ] in
        Store.checkpoint t2 acked2;
        Store.close t2;
        let t3, r3 = open_exn ~init:no_init d in
        Store.close t3;
        check Alcotest.int "retry publishes the next generation" 2
          r3.Store.r_snapshot_gen;
        check Alcotest.int "nothing to replay after rotation" 0
          r3.Store.r_replayed;
        expect_state "checkpointed state" acked2 r3.Store.r_state
      end
      else Store.close t2

let suite =
  [
    Alcotest.test_case "snapshot round-trip" `Quick
      (unless_armed test_snapshot_roundtrip);
    Alcotest.test_case "empty snapshot" `Quick (unless_armed test_snapshot_empty);
    Alcotest.test_case "apply_delta semantics" `Quick
      (unless_armed test_apply_delta);
    Alcotest.test_case "WAL round-trip + recovery" `Quick
      (unless_armed test_wal_roundtrip);
    Alcotest.test_case "checkpoint + prune" `Quick (unless_armed test_checkpoint);
    Alcotest.test_case "torn tail" `Quick (unless_armed test_torn_tail);
    Alcotest.test_case "crash at every record (differential)" `Quick
      (unless_armed test_crash_at_every_record);
    Alcotest.test_case "checkpoint crash window (differential)" `Quick
      (unless_armed test_checkpoint_crash_window);
    Alcotest.test_case "recovered answers bit-identical" `Quick
      (unless_armed test_recovered_answers);
    Alcotest.test_case "snapshot truncation" `Quick
      (unless_armed test_snapshot_truncation);
    Alcotest.test_case "WAL truncation" `Quick (unless_armed test_wal_truncation);
    (if store_plan_armed then
       Alcotest.test_case "snapshot mutations (skipped: plan armed)" `Quick
         (fun () -> ())
     else prop_snapshot_mutation);
    (if store_plan_armed then
       Alcotest.test_case "garbage snapshots (skipped: plan armed)" `Quick
         (fun () -> ())
     else prop_garbage_snapshot);
    Alcotest.test_case "hostile lengths" `Quick (unless_armed test_hostile_lengths);
    Alcotest.test_case "missing vs unreadable log" `Quick
      (unless_armed test_wal_missing_vs_unreadable);
    Alcotest.test_case "recovery refuses bad stores" `Quick
      (unless_armed test_recovery_refuses);
    Alcotest.test_case "cache epoch + precise invalidation" `Quick
      (unless_armed test_cache_epoch_and_touched);
    Alcotest.test_case "connect retry" `Quick (unless_armed test_connect_retry);
    Alcotest.test_case "healthz recovery field" `Quick
      (unless_armed test_healthz_recovery_field);
    Alcotest.test_case "wire journal-before-ack" `Quick
      (unless_armed test_wire_durability);
    Alcotest.test_case "store metrics" `Quick (unless_armed test_store_metrics);
    Alcotest.test_case "fault: short write" `Quick test_fault_short_write;
    Alcotest.test_case "fault: crash before rename" `Quick
      test_fault_crash_rename;
    Alcotest.test_case "fault: bit flip" `Quick test_fault_bit_flip;
    Alcotest.test_case "fault: crash mid-append" `Quick test_fault_crash_append;
    Alcotest.test_case "fault: crash mid-checkpoint" `Quick
      test_fault_crash_checkpoint;
  ]

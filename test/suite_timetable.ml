(* Temporal substrate: slot arithmetic, availability algebra, pivot-slot
   laws (Lemma 4) and schedule generation sanity. *)

module S = Timetable.Slot
module A = Timetable.Availability
module W = Timetable.Window

let check = Alcotest.check

let test_slot_arithmetic () =
  check Alcotest.int "48 slots per day" 48 S.slots_per_day;
  check Alcotest.int "horizon" 336 (S.horizon ~days:7);
  let slot = S.of_day_time ~day:2 ~hour:9 ~minute:30 in
  check Alcotest.int "encoding" ((2 * 48) + 19) slot;
  check Alcotest.int "day_of" 2 (S.day_of slot);
  check (Alcotest.pair Alcotest.int Alcotest.int) "time_of" (9, 30) (S.time_of slot);
  check Alcotest.string "pretty" "d2 09:30" (S.to_string slot)

let test_availability () =
  let a = A.create ~horizon:20 in
  check Alcotest.int "starts busy" 0 (A.free_count a);
  A.set_free a 3 10;
  A.set_busy a 6 7;
  check Alcotest.bool "slot 5 free" true (A.available a 5);
  check Alcotest.bool "slot 6 busy" false (A.available a 6);
  check Alcotest.bool "window 3..5 free" true (A.window_free a ~start:3 ~len:3);
  check Alcotest.bool "window 4..7 blocked" false (A.window_free a ~start:4 ~len:4);
  check Alcotest.bool "window beyond horizon" false (A.window_free a ~start:18 ~len:3);
  check (Alcotest.list Alcotest.int) "windows of 3" [ 3; 8 ] (A.windows a ~len:3)

let test_common () =
  let a = A.create ~horizon:10 and b = A.create ~horizon:10 in
  A.set_free a 0 6;
  A.set_free b 4 9;
  let c = A.common [ a; b ] in
  check (Alcotest.list Alcotest.int) "intersection windows" [ 4 ] (A.windows c ~len:3);
  match A.run_around c 5 with
  | Some (lo, hi) ->
      check (Alcotest.pair Alcotest.int Alcotest.int) "run" (4, 6) (lo, hi)
  | None -> Alcotest.fail "expected a run"

let test_pivots () =
  (* 0-indexed pivots for m=3 over 12 slots: 2, 5, 8, 11. *)
  check (Alcotest.list Alcotest.int) "pivots m=3" [ 2; 5; 8; 11 ]
    (W.pivots ~horizon:12 ~m:3);
  check (Alcotest.list Alcotest.int) "pivots m=5" [ 4; 9 ] (W.pivots ~horizon:12 ~m:5);
  check (Alcotest.pair Alcotest.int Alcotest.int) "interval clipped at 0" (0, 4)
    (W.interval ~horizon:12 ~m:3 2);
  check (Alcotest.pair Alcotest.int Alcotest.int) "interval clipped at end" (9, 11)
    (W.interval ~horizon:12 ~m:3 11)

let window_arb =
  QCheck.make
    ~print:(fun (h, m, t) -> Printf.sprintf "horizon=%d m=%d start=%d" h m t)
    QCheck.Gen.(
      pair (6 -- 60) (2 -- 6) >>= fun (h, m) ->
      map (fun t -> (h, m, t)) (int_bound (max 0 (h - m))))

(* Lemma 4: every m-window contains exactly one pivot, and lies inside
   that pivot's interval. *)
let prop_pivot_law =
  Gen.qtest ~count:300 "every m-window holds exactly one pivot" window_arb
    (fun (horizon, m, start) ->
      let pivots = W.pivots ~horizon ~m in
      let inside = List.filter (fun t -> t >= start && t <= start + m - 1) pivots in
      match inside with
      | [ pivot ] ->
          let lo, hi = W.interval ~horizon ~m pivot in
          W.pivot_of ~m start = pivot && start >= lo && start + m - 1 <= hi
      | _ -> false)

let prop_windows_naive =
  let arb =
    QCheck.make
      ~print:(fun (h, runs, len) ->
        Printf.sprintf "h=%d len=%d runs=[%s]" h len
          (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) runs)))
      QCheck.Gen.(
        12 -- 40 >>= fun h ->
        let run = pair (int_bound (h - 1)) (1 -- 8) in
        triple (return h) (list_size (0 -- 4) run) (2 -- 5))
  in
  Gen.qtest ~count:300 "windows = naive scan" arb
    (fun (horizon, runs, len) ->
      let a = A.create ~horizon in
      List.iter (fun (lo, l) -> A.set_free a lo (min (horizon - 1) (lo + l - 1))) runs;
      let naive =
        List.filter
          (fun t ->
            List.for_all (fun o -> A.available a (t + o)) (List.init len Fun.id))
          (List.init (max 0 (horizon - len + 1)) Fun.id)
      in
      A.windows a ~len = naive)

let test_sched_gen_shapes () =
  let rng = Random.State.make [| 7 |] in
  List.iter
    (fun archetype ->
      let a = Timetable.Sched_gen.person rng ~days:7 ~archetype in
      let free = A.free_count a in
      let total = S.horizon ~days:7 in
      Alcotest.check Alcotest.bool
        (Timetable.Sched_gen.archetype_to_string archetype ^ " density sane")
        true
        (free > total / 10 && free < total))
    Timetable.Sched_gen.all_archetypes;
  let af = Timetable.Sched_gen.always_free ~days:2 in
  check Alcotest.int "always free" (S.horizon ~days:2) (A.free_count af)

let test_sio_roundtrip () =
  let rng = Random.State.make [| 13 |] in
  let schedules = Timetable.Sched_gen.population rng ~days:2 ~n:7 in
  let parsed = Timetable.Sio.of_string (Timetable.Sio.to_string schedules) in
  check Alcotest.int "same count" (Array.length schedules) (Array.length parsed);
  Array.iteri
    (fun i a ->
      check Alcotest.bool
        (Printf.sprintf "schedule %d preserved" i)
        true
        (Bitset.equal (A.bits a) (A.bits parsed.(i))))
    schedules

let test_sio_rejects_malformed () =
  let expect_failure s =
    match Timetable.Sio.of_string s with
    | exception Timetable.Sio.Parse_error _ -> ()
    | _ -> Alcotest.fail "expected parse failure"
  in
  expect_failure "0: 101";
  expect_failure "# horizon 3\n0: 10";
  expect_failure "# horizon 3\n0: 1x1";
  expect_failure "# horizon 3\n1: 101";
  expect_failure "# horizon 3\nx: 101"

let test_population_determinism () =
  let p1 = Timetable.Sched_gen.population (Random.State.make [| 5 |]) ~days:3 ~n:10 in
  let p2 = Timetable.Sched_gen.population (Random.State.make [| 5 |]) ~days:3 ~n:10 in
  Array.iteri
    (fun i a ->
      check Alcotest.bool "same schedule" true (Bitset.equal (A.bits a) (A.bits p2.(i))))
    p1

let suite =
  [
    Alcotest.test_case "slot arithmetic" `Quick test_slot_arithmetic;
    Alcotest.test_case "availability windows" `Quick test_availability;
    Alcotest.test_case "common availability" `Quick test_common;
    Alcotest.test_case "pivot slots fixture" `Quick test_pivots;
    Alcotest.test_case "schedule generator shapes" `Quick test_sched_gen_shapes;
    Alcotest.test_case "schedule save/parse roundtrip" `Quick test_sio_roundtrip;
    Alcotest.test_case "schedule parse rejects malformed" `Quick test_sio_rejects_malformed;
    Alcotest.test_case "population determinism" `Quick test_population_determinism;
    prop_pivot_law;
    prop_windows_naive;
  ]

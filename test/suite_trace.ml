(* Query-level tracing: cross-domain stitching of pooled solves, the
   trace-off differential, the pruning-waterfall accounting identity,
   snapshot deltas, dropped-span accounting and the exposition server. *)

open Stgq_core

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* Every test leaves tracing disabled and the buffers empty. *)
let with_trace f =
  Obs.Trace.set_enabled true;
  Obs.Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.reset ())
    f

let small_ti () =
  let ti = Workload.Scenario.coauthor ~seed:11 ~days:2 ~n:300 () in
  let graph = ti.Query.social.Query.graph in
  let initiator = Workload.Scenario.pick_initiator ~rank:10 graph in
  { ti with Query.social = { ti.Query.social with Query.initiator } }

let stg_query = { Query.p = 3; s = 2; k = 1; m = 4 }

(* ------------------------------------------------------------------ *)
(* Cross-domain stitching.                                             *)

let test_pooled_single_tree () =
  let ti = small_ti () in
  with_trace @@ fun () ->
  (Engine.Pool.with_pool ~size:2 @@ fun pool ->
   ignore (Parallel.solve_report ~pool ti stg_query : Parallel.report));
  let spans = Obs.Trace.spans () in
  let roots = Obs.Trace.trees spans in
  check Alcotest.int "exactly one root" 1 (List.length roots);
  let root =
    match roots with
    | [ t ] -> t.Obs.Trace.t_span
    | _ -> Alcotest.fail "no tree"
  in
  check Alcotest.string "rooted at the solve" "parallel.solve"
    root.Obs.Trace.sp_name;
  List.iter
    (fun (sp : Obs.Trace.span) ->
      check Alcotest.int
        (Printf.sprintf "span %S carries the root trace id" sp.Obs.Trace.sp_name)
        root.Obs.Trace.sp_trace sp.Obs.Trace.sp_trace)
    spans;
  check Alcotest.bool "bucket spans present" true
    (List.exists
       (fun (sp : Obs.Trace.span) -> sp.Obs.Trace.sp_name = "parallel.bucket")
       spans);
  (* Pool workers are their own domains: the stitched tree must span
     more than the submitting one. *)
  check Alcotest.bool "spans cross domains" true
    (List.exists
       (fun (sp : Obs.Trace.span) ->
         sp.Obs.Trace.sp_domain <> root.Obs.Trace.sp_domain)
       spans)

let test_service_root_covers_certify () =
  let ti = small_ti () in
  with_trace @@ fun () ->
  let service = Service.create ti in
  ignore
    (Service.stgq service ~initiator:ti.Query.social.Query.initiator stg_query
      : Query.stg_solution option);
  match Obs.Trace.last () with
  | None -> Alcotest.fail "no trace recorded"
  | Some tree ->
      check Alcotest.string "service root" "service.stgq"
        tree.Obs.Trace.t_span.Obs.Trace.sp_name;
      let names =
        List.map
          (fun t -> t.Obs.Trace.t_span.Obs.Trace.sp_name)
          tree.Obs.Trace.t_children
      in
      check Alcotest.bool "solver child" true
        (List.mem "stgselect.solve" names);
      check Alcotest.bool "certify child" true
        (List.mem "service.certify" names)

(* ------------------------------------------------------------------ *)
(* The off path records nothing and changes nothing.                   *)

let test_disabled_records_no_spans () =
  let ti = small_ti () in
  Obs.Trace.set_enabled false;
  Obs.Trace.reset ();
  let off = Stgselect.solve ti stg_query in
  check Alcotest.int "nothing recorded" 0 (Obs.Trace.total_recorded ());
  check Alcotest.bool "span list empty" true (Obs.Trace.spans () = []);
  let on = with_trace (fun () -> Stgselect.solve ti stg_query) in
  check Alcotest.bool "tracing changes no answer" true (off = on)

(* ------------------------------------------------------------------ *)
(* Waterfall accounting identity.                                      *)

let test_waterfall_accounts_for_every_candidate () =
  let ti = small_ti () in
  with_trace @@ fun () ->
  let r = Stgselect.solve_report ti stg_query in
  let stats = r.Stgselect.stats in
  match Obs.Trace.last () with
  | None -> Alcotest.fail "no trace recorded"
  | Some tree ->
      let w = Obs.Trace.waterfall tree in
      check Alcotest.bool "identity balances" true
        (Obs.Trace.waterfall_balanced w);
      check Alcotest.bool "candidates examined" true (w.Obs.Trace.w_examined > 0);
      check Alcotest.int "examined matches the kernel stats"
        stats.Search_core.examined w.Obs.Trace.w_examined;
      check Alcotest.int "includes match" stats.Search_core.includes
        w.Obs.Trace.w_included;
      check Alcotest.int "deferrals match" stats.Search_core.deferred
        w.Obs.Trace.w_deferred;
      check Alcotest.int "temporal removals match"
        stats.Search_core.removed_temporal w.Obs.Trace.w_removed_temporal

(* ------------------------------------------------------------------ *)
(* Snapshot deltas and dropped-span accounting.                        *)

let with_obs f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let counter_in snap name =
  match List.assoc_opt name snap.Obs.counters with Some v -> v | None -> -1

let test_delta_subtracts_counters () =
  with_obs @@ fun () ->
  let c = Obs.counter "test.delta.counter" in
  Obs.Counter.add c 3;
  let older = Obs.snapshot () in
  Obs.Counter.add c 4;
  let newer = Obs.snapshot () in
  let d = Obs.delta older newer in
  check Alcotest.int "counter rate" 4 (counter_in d "test.delta.counter");
  check Alcotest.int "cumulative total untouched" 7
    (counter_in newer "test.delta.counter");
  (* A counter reset between the snapshots clamps at 0, never negative. *)
  Obs.Counter.reset c;
  let after_reset = Obs.snapshot () in
  check Alcotest.int "clamped at zero" 0
    (counter_in (Obs.delta newer after_reset) "test.delta.counter")

let test_dropped_spans_surface_in_snapshot () =
  with_obs @@ fun () ->
  let extra = 25 in
  for _ = 1 to Obs.Span.capacity + extra do
    Obs.Span.with_ "tick" (fun () -> ())
  done;
  check Alcotest.int "overwrites counted" extra (Obs.Span.dropped ());
  check Alcotest.int "surfaced as obs.spans.dropped" extra
    (counter_in (Obs.snapshot ()) "obs.spans.dropped")

(* The trace totals must reach snapshots through the counter source:
   a snapshot taken while tracing is on reports exactly what the Trace
   module counted (this is the number BENCH_obs.json publishes). *)
let test_trace_totals_surface_in_snapshot () =
  with_obs @@ fun () ->
  Obs.Trace.set_enabled true;
  Obs.Trace.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.reset ())
  @@ fun () ->
  for _ = 1 to 7 do
    Obs.Trace.with_span "outer" (fun () ->
        Obs.Trace.with_span "inner" (fun () -> ()))
  done;
  check Alcotest.int "module total" 14 (Obs.Trace.total_recorded ());
  check Alcotest.int "snapshot agrees with Trace.total_recorded" 14
    (counter_in (Obs.snapshot ()) "obs.trace.spans");
  check Alcotest.int "no drops" 0
    (counter_in (Obs.snapshot ()) "obs.trace.dropped")

(* ------------------------------------------------------------------ *)
(* Exposition: routing and the wire formats.                           *)

let test_exposition_routes () =
  with_obs @@ fun () ->
  Fun.protect ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.reset ())
  @@ fun () ->
  let c = Obs.counter "test.expo.requests" in
  Obs.Counter.add c 2;
  let baseline = Obs.snapshot () in
  Obs.Counter.add c 5;
  let status path =
    let s, _, _ = Obs.Exposition.respond ~baseline path in
    s
  in
  let body path =
    let _, _, b = Obs.Exposition.respond ~baseline path in
    b
  in
  check Alcotest.int "index ok" 200 (status "/");
  check Alcotest.bool "index lists the liveness probe" true
    (contains (body "/") "/healthz");
  check Alcotest.int "healthz ok" 200 (status "/healthz");
  check Alcotest.bool "healthz body" true (contains (body "/healthz") "ok");
  check Alcotest.int "metrics ok" 200 (status "/metrics");
  check Alcotest.bool "prometheus name mangling + total" true
    (contains (body "/metrics") "stgq_test_expo_requests 7");
  check Alcotest.bool "delta subtracts the baseline" true
    (contains (body "/metrics/delta") "stgq_test_expo_requests 5");
  check Alcotest.int "404 while no trace is buffered" 404 (status "/trace/last");
  Obs.Trace.set_enabled true;
  Obs.Trace.reset ();
  Obs.Trace.with_span "unit.root" (fun () -> ());
  check Alcotest.int "trace served" 200 (status "/trace/last");
  check Alcotest.bool "tree json names the span" true
    (contains (body "/trace/last") "unit.root");
  check Alcotest.int "unknown path" 404 (status "/nope")

let test_unix_socket_serve () =
  with_obs @@ fun () ->
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stgq-expo-%d.sock" (Unix.getpid ()))
  in
  let baseline = Obs.snapshot () in
  let server =
    Domain.spawn (fun () ->
        Obs.Exposition.serve ~baseline ~max_requests:1
          (Obs.Exposition.Unix_path path))
  in
  let rec wait n =
    if (not (Sys.file_exists path)) && n > 0 then begin
      Unix.sleepf 0.01;
      wait (n - 1)
    end
  in
  wait 500;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_UNIX path);
  let req = "GET /metrics HTTP/1.1\r\nHost: unit\r\n\r\n" in
  ignore (Unix.write_substring sock req 0 (String.length req) : int);
  let buf = Bytes.create 65536 in
  let rec read_all acc =
    match Unix.read sock buf 0 (Bytes.length buf) with
    | 0 -> acc
    | n -> read_all (acc ^ Bytes.sub_string buf 0 n)
  in
  let response = read_all "" in
  Unix.close sock;
  Domain.join server;
  check Alcotest.bool "HTTP 200" true (contains response "200 OK");
  check Alcotest.bool "prometheus body" true (contains response "# TYPE")

(* ------------------------------------------------------------------ *)
(* Exporters.                                                          *)

let test_chrome_export_shape () =
  with_trace @@ fun () ->
  Obs.Trace.with_span "outer" ~attrs:[ ("key", "value") ] (fun () ->
      Obs.Trace.with_span "inner" (fun () -> ()));
  let json = Obs.Trace.chrome_json (Obs.Trace.spans ()) in
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " present") true (contains json needle))
    [
      "\"traceEvents\"";
      "\"ph\": \"X\"";
      "\"outer\"";
      "\"inner\"";
      "\"key\": \"value\"";
      "\"displayTimeUnit\"";
    ]

let suite =
  [
    Alcotest.test_case "pooled solve yields one rooted tree" `Quick
      test_pooled_single_tree;
    Alcotest.test_case "service root covers solver and certify" `Quick
      test_service_root_covers_certify;
    Alcotest.test_case "disabled tracing records nothing" `Quick
      test_disabled_records_no_spans;
    Alcotest.test_case "waterfall accounts for every candidate" `Quick
      test_waterfall_accounts_for_every_candidate;
    Alcotest.test_case "snapshot delta" `Quick test_delta_subtracts_counters;
    Alcotest.test_case "dropped spans surface in snapshots" `Quick
      test_dropped_spans_surface_in_snapshot;
    Alcotest.test_case "trace totals surface in snapshots" `Quick
      test_trace_totals_surface_in_snapshot;
    Alcotest.test_case "exposition routing" `Quick test_exposition_routes;
    Alcotest.test_case "exposition over a unix socket" `Quick
      test_unix_socket_serve;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_export_shape;
  ]

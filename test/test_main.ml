let () =
  Alcotest.run "stgq"
    [
      ("bitset", Suite_bitset.suite);
      ("graph", Suite_graph.suite);
      ("timetable", Suite_timetable.suite);
      ("lp-ilp", Suite_lp.suite);
      ("search", Suite_search.suite);
      ("ip-model", Suite_ip.suite);
      ("arrange", Suite_arrange.suite);
      ("validate", Suite_validate.suite);
      ("parallel", Suite_parallel.suite);
      ("workload", Suite_workload.suite);
      ("pqueue", Suite_pqueue.suite);
      ("topk", Suite_topk.suite);
      ("heuristics", Suite_heuristics.suite);
      ("planner", Suite_planner.suite);
      ("explain", Suite_explain.suite);
      ("auto", Suite_auto.suite);
      ("service", Suite_service.suite);
      ("engine", Suite_engine.suite);
      ("batch", Suite_batch.suite);
      ("obs", Suite_obs.suite);
      ("trace", Suite_trace.suite);
      ("regression", Suite_regression.suite);
      ("proto", Suite_proto.suite);
      ("server", Suite_server.suite);
      ("community", Suite_community.suite);
      ("report", Suite_report.suite);
      ("lint", Suite_lint.suite);
      ("resilience", Suite_resilience.suite);
      ("fault-matrix", Suite_faultmatrix.suite);
      ("io", Suite_io.suite);
      ("integration", Suite_integration.suite);
      ("paper-example", Suite_paper_example.suite);
      ("astar", Suite_astar.suite);
      ("lint-typed", Suite_lint_typed.suite);
    ]
